package moe

import (
	"fmt"
	"testing"

	"bagualu/internal/mpi"
	"bagualu/internal/simnet"
	"bagualu/internal/tensor"
)

// runDistCC is runDist with an explicit wire configuration and
// optional SimRate; it additionally returns the summed sharded
// gradients per rank and the simulated makespan.
func runDistCC(t *testing.T, algo A2AAlgo, cc CommConfig, simRate float64, seed uint64) (outs, dxs []*tensor.Tensor, grads []map[string]*tensor.Tensor, simTime float64) {
	t.Helper()
	const P, tokens, d = 4, 6, 8
	outs = make([]*tensor.Tensor, P)
	dxs = make([]*tensor.Tensor, P)
	grads = make([]map[string]*tensor.Tensor, P)
	w := mpi.NewWorld(P, distTestTopo())
	w.Run(func(c *mpi.Comm) {
		r := tensor.NewRNG(seed)
		cfg := gateCfg(d, 8, 2)
		m := NewDistMoEComm("moe", r, cfg, 16, c, algo, cc)
		m.SimRate = simRate
		xr := tensor.NewRNG(seed + 100 + uint64(c.Rank()))
		x := tensor.Randn(xr, 1, tokens, d)
		out := m.Forward(x)
		dx := m.Backward(tensor.Ones(tokens, d))
		outs[c.Rank()] = out
		dxs[c.Rank()] = dx
		g := map[string]*tensor.Tensor{}
		for _, p := range m.Params() {
			g[p.Name] = p.G.Clone()
		}
		grads[c.Rank()] = g
	})
	return outs, dxs, grads, w.MaxTime()
}

// TestDistMoEOverlapMatchesBlocking: the two-phase exchange must be a
// pure scheduling change — identical outputs, input grads, and
// parameter grads (up to summation-order rounding in dW).
func TestDistMoEOverlapMatchesBlocking(t *testing.T) {
	for _, algo := range []A2AAlgo{Direct, Hierarchical, Auto} {
		t.Run(algo.String(), func(t *testing.T) {
			bOut, bDx, bG, _ := runDistCC(t, algo, CommConfig{Codec: mpi.FP32Wire, Overlap: false}, 0, 11)
			oOut, oDx, oG, _ := runDistCC(t, algo, CommConfig{Codec: mpi.FP32Wire, Overlap: true}, 0, 11)
			for rank := range bOut {
				if !oOut[rank].AllClose(bOut[rank], 1e-5) {
					t.Fatalf("rank %d: overlap forward differs from blocking", rank)
				}
				if !oDx[rank].AllClose(bDx[rank], 1e-5) {
					t.Fatalf("rank %d: overlap input grad differs from blocking", rank)
				}
				for name, want := range bG[rank] {
					if !oG[rank][name].AllClose(want, 1e-4) {
						t.Fatalf("rank %d: overlap grad %s differs from blocking", rank, name)
					}
				}
			}
		})
	}
}

// TestDistMoEFP16GradsWithinTolerance is the acceptance-criteria
// test: hierarchical dispatch with the FP16 wire codec must produce
// outputs and gradients equal to the direct FP32 run within FP16
// quantization tolerance on a small model.
func TestDistMoEFP16GradsWithinTolerance(t *testing.T) {
	ref, refDx, refG, _ := runDistCC(t, Direct, CommConfig{Codec: mpi.FP32Wire}, 0, 23)
	for _, overlap := range []bool{false, true} {
		t.Run(fmt.Sprintf("overlap=%v", overlap), func(t *testing.T) {
			out, dx, g, _ := runDistCC(t, Hierarchical, CommConfig{Codec: mpi.FP16Wire, Overlap: overlap}, 0, 23)
			// FP16 has ~2^-11 relative precision; activations here are
			// O(1) and each output accumulates a handful of expert rows,
			// so a few 1e-2 absolute slack covers the quantization of
			// dispatch, combine, and both backward legs.
			const tol = 3e-2
			for rank := range ref {
				if !out[rank].AllClose(ref[rank], tol) {
					t.Fatalf("rank %d: fp16 forward outside fp16 tolerance", rank)
				}
				if !dx[rank].AllClose(refDx[rank], tol) {
					t.Fatalf("rank %d: fp16 input grad outside fp16 tolerance", rank)
				}
				for name, want := range refG[rank] {
					if !g[rank][name].AllClose(want, tol) {
						t.Fatalf("rank %d: fp16 grad %s outside fp16 tolerance", rank, name)
					}
				}
			}
		})
	}
}

// TestDistMoEFP16CutsInterSupernodeBytes: the codec must strip at
// least 45% of the simulated inter-supernode bytes from a training
// step, end to end through dispatch, combine, and both backward legs.
func TestDistMoEFP16CutsInterSupernodeBytes(t *testing.T) {
	inter := func(codec mpi.Codec) int64 {
		const P, tokens, d = 4, 16, 32
		w := mpi.NewWorld(P, distTestTopo())
		w.Run(func(c *mpi.Comm) {
			r := tensor.NewRNG(5)
			cfg := gateCfg(d, 8, 2)
			m := NewDistMoEComm("moe", r, cfg, 64, c, Hierarchical, CommConfig{Codec: codec})
			xr := tensor.NewRNG(500 + uint64(c.Rank()))
			x := tensor.Randn(xr, 1, tokens, d)
			m.Forward(x)
			m.Backward(tensor.Ones(tokens, d))
		})
		return w.Stats().BytesAt(simnet.MachineLevel)
	}
	fp32 := inter(mpi.FP32Wire)
	fp16 := inter(mpi.FP16Wire)
	if fp32 == 0 {
		t.Fatal("no inter-supernode traffic in fp32 baseline")
	}
	red := 1 - float64(fp16)/float64(fp32)
	t.Logf("step inter-supernode bytes: fp32=%d fp16=%d (-%.1f%%)", fp32, fp16, 100*red)
	if red < 0.45 {
		t.Fatalf("FP16 wire cut inter-supernode bytes by only %.1f%%, want >=45%%", 100*red)
	}
}

// TestDistMoEOverlapReducesVirtualTime: with expert compute charged
// to the virtual clock, the two-phase schedule must finish the step
// in less simulated time than the blocking one on a multi-supernode
// topology (local compute hides cross-supernode flight time).
func TestDistMoEOverlapReducesVirtualTime(t *testing.T) {
	// SimRate low enough that expert GEMMs take comparable time to the
	// simulated wire flight, the regime where overlap pays.
	const simRate = 2e9
	_, _, _, blocking := runDistCC(t, Hierarchical, CommConfig{Codec: mpi.FP16Wire, Overlap: false}, simRate, 31)
	_, _, _, overlap := runDistCC(t, Hierarchical, CommConfig{Codec: mpi.FP16Wire, Overlap: true}, simRate, 31)
	t.Logf("virtual step time: blocking=%.3gs overlap=%.3gs", blocking, overlap)
	if overlap >= blocking {
		t.Fatalf("overlap virtual time %.3g not below blocking %.3g", overlap, blocking)
	}
}

// TestDistMoEWireStatsPerStep: the per-comm WireStats must attribute
// bytes to both tiers and show Raw > Wire at machine level under the
// FP16 codec.
func TestDistMoEWireStatsPerStep(t *testing.T) {
	const P, tokens, d = 4, 8, 16
	agg := make([]mpi.WireStats, P)
	w := mpi.NewWorld(P, distTestTopo())
	w.Run(func(c *mpi.Comm) {
		r := tensor.NewRNG(9)
		m := NewDistMoEComm("moe", r, gateCfg(d, 8, 2), 32, c, Hierarchical, CommConfig{Codec: mpi.FP16Wire})
		xr := tensor.NewRNG(900 + uint64(c.Rank()))
		x := tensor.Randn(xr, 1, tokens, d)
		before := m.WireStats()
		m.Forward(x)
		m.Backward(tensor.Ones(tokens, d))
		agg[c.Rank()] = m.WireStats().Sub(before)
	})
	var total mpi.WireStats
	for _, s := range agg {
		total.Add(s)
	}
	if total.InterBytes() == 0 || total.IntraBytes() == 0 {
		t.Fatalf("expected traffic at both tiers: inter=%d intra=%d", total.InterBytes(), total.IntraBytes())
	}
	if total.Wire[simnet.MachineLevel] >= total.Raw[simnet.MachineLevel] {
		t.Fatalf("fp16 wire %d not below raw %d at machine level",
			total.Wire[simnet.MachineLevel], total.Raw[simnet.MachineLevel])
	}
}
