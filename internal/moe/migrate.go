package moe

import (
	"fmt"
	"sort"

	"bagualu/internal/mpi"
	"bagualu/internal/nn"
	"bagualu/internal/tensor"
)

// OptStateCarrier lets expert migration ship optimizer state (Adam
// moments, SGD velocity) alongside the weights of a moved expert, so
// a rebalance or straggler mitigation leaves the training trajectory
// bit-exactly unchanged. Implemented by the train package optimizers;
// any step-count state (Adam bias correction) advances identically on
// every rank and needs no shipping.
type OptStateCarrier interface {
	// State returns the per-parameter state slices (each the same
	// length as the parameter), or nil if none exist yet.
	State(p *nn.Param) [][]float32
	// SetState installs state slices for a parameter.
	SetState(p *nn.Param, state [][]float32)
	// Forget drops any state held for a parameter (its expert left
	// this rank).
	Forget(p *nn.Param)
}

// Migrate applies a new expert placement: every expert whose owner
// changes has its weights shipped point-to-point from the old owner
// to the new one. All ranks of the expert-parallel group must call
// Migrate with an identical plan (it is a collective). Optimizer
// state of moved experts is not transferred — Adam moments restart,
// as when real systems rebalance without checkpoint surgery. Use
// MigrateOpt to carry the state and keep the trajectory bit-exact.
func (m *DistMoE) Migrate(newPlace *Placement) error {
	return m.MigrateOpt(newPlace, nil)
}

// MigrateOpt is Migrate with optimizer-state transfer: when opt is
// non-nil, each moved expert's per-parameter state slices travel in
// the same frame as its weights and are installed on the new owner
// (and forgotten on the old), so the next optimizer step is
// bit-identical to a run where the expert never moved. The plan may
// be unbalanced (see Placement.Validate); LocalExperts is recomputed.
func (m *DistMoE) MigrateOpt(newPlace *Placement, opt OptStateCarrier) error {
	if newPlace.NumExperts != m.Cfg.NumExperts || newPlace.Ranks != m.comm.Size() {
		return fmt.Errorf("moe: migration plan shape %dx%d does not match %dx%d",
			newPlace.NumExperts, newPlace.Ranks, m.Cfg.NumExperts, m.comm.Size())
	}
	if err := newPlace.Validate(); err != nil {
		return err
	}
	moves := m.place.Moves(newPlace)
	rank := m.comm.Rank()

	// Current experts by global id for quick lookup.
	byGlobal := map[int]*nn.FeedForward{}
	for i, e := range m.localGlobal {
		byGlobal[e] = m.Experts[i]
	}

	// Ship outgoing experts; tag by move index (the move list is
	// identical on every rank, so tags match up). The frame is the
	// flattened weights followed by each parameter's optimizer-state
	// slices; the ints metadata carries the per-parameter slice count
	// so the receiver can reconstruct the framing.
	const migrateTagBase = 1 << 20
	for i, e := range moves {
		oldOwner, newOwner := m.place.Owner[e], newPlace.Owner[e]
		tag := migrateTagBase + i
		if oldOwner == rank {
			ex := byGlobal[e]
			var flat []float32
			var meta []int
			for _, p := range ex.Params() {
				flat = append(flat, p.W.Data...)
			}
			if opt != nil {
				for _, p := range ex.Params() {
					st := opt.State(p)
					meta = append(meta, len(st))
					for _, s := range st {
						flat = append(flat, s...)
					}
					opt.Forget(p)
				}
			}
			m.comm.SendMsg(newOwner, tag, flat, meta)
			delete(byGlobal, e)
		}
		if newOwner == rank {
			flat, meta := m.comm.RecvMsg(oldOwner, tag)
			ex := nn.NewFeedForward(fmt.Sprintf("%s.expert%d", m.name, e), tensor.NewRNG(0), m.Cfg.Dim, m.hidden)
			off := 0
			for _, p := range ex.Params() {
				copy(p.W.Data, flat[off:off+p.W.Len()])
				off += p.W.Len()
			}
			if opt != nil {
				for pi, p := range ex.Params() {
					if pi >= len(meta) {
						return fmt.Errorf("moe: migrated expert %d missing state metadata", e)
					}
					st := make([][]float32, meta[pi])
					for k := range st {
						st[k] = append([]float32(nil), flat[off:off+p.W.Len()]...)
						off += p.W.Len()
					}
					if len(st) > 0 {
						opt.SetState(p, st)
					}
				}
			}
			if off != len(flat) {
				return fmt.Errorf("moe: migrated expert %d payload %d, want %d", e, len(flat), off)
			}
			byGlobal[e] = ex
		}
	}

	// Install the new placement and rebuild the ordered local shard.
	// Ownership may be unbalanced now, so the shard size is whatever
	// the plan assigns this rank.
	m.place = newPlace
	m.rebuildLookups()
	m.LocalExperts = len(m.localGlobal)
	globals := make([]int, 0, len(byGlobal))
	for e := range byGlobal {
		globals = append(globals, e)
	}
	sort.Ints(globals)
	if len(globals) != m.LocalExperts {
		return fmt.Errorf("moe: rank %d holds %d experts after migration, want %d", rank, len(globals), m.LocalExperts)
	}
	m.Experts = m.Experts[:0]
	for _, e := range globals {
		m.Experts = append(m.Experts, byGlobal[e])
	}
	// Invalidate forward caches (including the grouped-GEMM view over
	// the expert shard, which caches weight tensor slices).
	m.group = nil
	m.perTok = nil
	m.sendOrder = nil
	m.recvCount = nil
	m.ordLocal = nil
	m.ordRemote = nil
	m.stLocal = nil
	m.stRemote = nil
	m.releaseCombine()
	return nil
}

// ReshardTo rebinds the layer to a different communicator and expert
// placement WITHOUT moving any weights — the recovery path after a
// rank failure, where the old world's data is gone and weights come
// from a checkpoint restore immediately afterwards. Experts this rank
// already owns keep their FeedForward objects (their weights will be
// overwritten by the restore anyway); newly assigned slots get fresh
// ones. Shadows and all forward caches are dropped.
//
// Every surviving rank must call ReshardTo with the shrunk
// communicator and an identical placement over it.
func (m *DistMoE) ReshardTo(newComm *mpi.Comm, newPlace *Placement) error {
	if newPlace.NumExperts != m.Cfg.NumExperts {
		return fmt.Errorf("moe: reshard plan has %d experts, layer has %d", newPlace.NumExperts, m.Cfg.NumExperts)
	}
	if newPlace.Ranks != newComm.Size() {
		return fmt.Errorf("moe: reshard plan spans %d ranks, communicator has %d", newPlace.Ranks, newComm.Size())
	}
	if err := newPlace.Validate(); err != nil {
		return err
	}
	byGlobal := map[int]*nn.FeedForward{}
	for i, e := range m.localGlobal {
		byGlobal[e] = m.Experts[i]
	}
	m.comm = newComm
	m.place = newPlace
	m.rebuildLookups()
	m.LocalExperts = len(m.localGlobal)
	m.Experts = m.Experts[:0]
	for _, e := range m.localGlobal {
		ex := byGlobal[e]
		if ex == nil {
			ex = nn.NewFeedForward(fmt.Sprintf("%s.expert%d", m.name, e), tensor.NewRNG(0), m.Cfg.Dim, m.hidden)
		}
		m.Experts = append(m.Experts, ex)
	}
	// Supernode locality is a property of the new communicator.
	t := newComm.Topology()
	mySN := t.Supernode(newComm.Global(newComm.Rank()))
	m.localSN = make([]bool, newComm.Size())
	for q := 0; q < newComm.Size(); q++ {
		m.localSN[q] = t.Supernode(newComm.Global(q)) == mySN
	}
	// Drop shadows (placement-dependent) and every forward cache.
	m.shadows = nil
	m.shadowList = nil
	m.shadowRefs = nil
	m.shadowOuts = nil
	m.group = nil
	m.shadowGroup = nil
	m.perTok = nil
	m.sendOrder = nil
	m.recvCount = nil
	m.ordLocal = nil
	m.ordRemote = nil
	m.stLocal = nil
	m.stRemote = nil
	m.releaseCombine()
	return nil
}

// GatherExpertCounts all-reduces the last routing's per-expert token
// counts over comm, giving every rank the global load picture the
// rebalancer plans from. Returns zeros if no forward pass has run.
func (m *DistMoE) GatherExpertCounts(comm *mpi.Comm) []int {
	counts := make([]float32, m.Cfg.NumExperts)
	if r := m.Gate.routing; r != nil {
		for e, c := range r.Counts {
			counts[e] = float32(c)
		}
	}
	red := comm.AllReduce(counts, mpi.OpSum)
	out := make([]int, len(red))
	for i, v := range red {
		out[i] = int(v)
	}
	return out
}
