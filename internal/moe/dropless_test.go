package moe

import (
	"fmt"
	"math"
	"testing"

	"bagualu/internal/mpi"
	"bagualu/internal/nn"
	"bagualu/internal/tensor"
)

// Dropless routing tests: the TokenChoice default must conserve every
// token assignment regardless of how skewed the batch is, the
// expert-choice ablation must produce perfectly balanced
// variable-length assignments, and the unified routing core must make
// training and inference agree exactly.

// skewedBatch returns T tokens of width d where frac of them are
// copies of one "hot" row (they all route identically, concentrating
// load on a few experts).
func skewedBatch(seed uint64, tokens, d int, frac float64) *tensor.Tensor {
	r := tensor.NewRNG(seed)
	x := tensor.Randn(r, 1, tokens, d)
	hot := x.Row(0)
	nHot := int(frac * float64(tokens))
	for t := 1; t <= nHot && t < tokens; t++ {
		copy(x.Row(t), hot)
	}
	return x
}

func TestDroplessConservation(t *testing.T) {
	const tokens, d, experts, topk = 32, 8, 8, 2
	for _, seed := range []uint64{1, 2, 3} {
		for _, frac := range []float64{0, 0.5, 0.9} {
			t.Run(fmt.Sprintf("seed=%d/skew=%.1f", seed, frac), func(t *testing.T) {
				cfg := GateConfig{Dim: d, NumExperts: experts, TopK: topk, NoiseStd: 0.5}
				g := NewGate("gate", tensor.NewRNG(seed), cfg)
				r := g.Forward(skewedBatch(seed+10, tokens, d, frac))

				if r.Overflow != 0 {
					t.Fatalf("dropless overflow %d, want 0", r.Overflow)
				}
				total, recount := 0, make([]int, experts)
				for tok, as := range r.Assign {
					if len(as) != topk {
						t.Fatalf("token %d has %d assignments, want %d", tok, len(as), topk)
					}
					var wsum float32
					seen := map[int]bool{}
					for _, a := range as {
						if a.Dropped {
							t.Fatalf("token %d: dropless assignment marked Dropped", tok)
						}
						if seen[a.Expert] {
							t.Fatalf("token %d routed twice to expert %d", tok, a.Expert)
						}
						seen[a.Expert] = true
						recount[a.Expert]++
						wsum += a.Weight
						total++
					}
					if math.Abs(float64(wsum)-1) > 1e-5 {
						t.Fatalf("token %d combine weights sum %v, want 1", tok, wsum)
					}
				}
				if total != tokens*topk {
					t.Fatalf("conserved %d assignments, want %d", total, tokens*topk)
				}
				for e, c := range recount {
					if c != r.Counts[e] {
						t.Fatalf("expert %d: Counts=%d but %d assignments", e, r.Counts[e], c)
					}
				}
			})
		}
	}
}

func TestExpertChoiceInvariants(t *testing.T) {
	const tokens, d, experts, topk = 16, 8, 4, 2
	cfg := GateConfig{
		Dim: d, NumExperts: experts, TopK: topk,
		CapacityFactor: 1, Mode: ExpertChoice, AuxLossWeight: 0.01,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	C := cfg.Capacity(tokens) // ceil(1 * 16 * 2 / 4) = 8
	g := NewGate("gate", tensor.NewRNG(4), cfg)
	r := g.Forward(skewedBatch(5, tokens, d, 0.5))

	if r.Overflow != 0 {
		t.Fatalf("expert-choice overflow %d, want 0", r.Overflow)
	}
	// Perfect balance by construction: every expert takes exactly C.
	for e, c := range r.Counts {
		if c != C {
			t.Fatalf("expert %d count %d, want C=%d", e, c, C)
		}
	}
	total := 0
	for tok, as := range r.Assign {
		for i, a := range as {
			if i > 0 && as[i-1].Expert >= a.Expert {
				t.Fatalf("token %d assignments not expert-ascending: %v", tok, as)
			}
			if a.Weight <= 0 || a.Weight > 1 {
				t.Fatalf("token %d weight %v outside (0,1]", tok, a.Weight)
			}
			total++
		}
	}
	if total != experts*C {
		t.Fatalf("total assignments %d, want E*C=%d", total, experts*C)
	}
	// Balance is structural, so the GShard balance loss is skipped.
	if r.AuxLoss != 0 {
		t.Fatalf("expert-choice aux loss %v, want 0 (skipped)", r.AuxLoss)
	}
}

// TestInferRouteMatchesForward: the unified routing core means a
// noise-free training gate and the inference gate must agree exactly
// — same experts, bitwise the same combine weights.
func TestInferRouteMatchesForward(t *testing.T) {
	const tokens, d, experts, topk = 8, 8, 8, 2
	cfg := GateConfig{Dim: d, NumExperts: experts, TopK: topk}
	g := NewGate("gate", tensor.NewRNG(6), cfg)
	x := skewedBatch(7, tokens, d, 0.5)

	train := g.Forward(x).Assign
	infer := g.InferRoute(x)
	for tok := range train {
		if len(train[tok]) != len(infer[tok]) {
			t.Fatalf("token %d: %d train vs %d infer assignments", tok, len(train[tok]), len(infer[tok]))
		}
		for i := range train[tok] {
			tr, in := train[tok][i], infer[tok][i]
			if tr.Expert != in.Expert || tr.Weight != in.Weight {
				t.Fatalf("token %d slot %d: train (%d,%v) vs infer (%d,%v)",
					tok, i, tr.Expert, tr.Weight, in.Expert, in.Weight)
			}
		}
	}
}

// TestLocalMoEGradNumericExpertChoice mirrors TestLocalMoEGradNumeric
// for the expert-choice mode: the straight-through combine-weight
// gradient must match numeric differentiation (routing selections are
// discrete and stay fixed under the small perturbation).
func TestLocalMoEGradNumericExpertChoice(t *testing.T) {
	r := tensor.NewRNG(8)
	cfg := GateConfig{Dim: 4, NumExperts: 3, TopK: 2, CapacityFactor: 1, Mode: ExpertChoice}
	m := NewLocalMoE("moe", r, cfg, 8)
	x := tensor.Randn(r, 1, 6, 4)
	w := tensor.Randn(r, 1, 6, 4)

	loss := func() float64 {
		return float64(tensor.Dot(m.Forward(x), w))
	}
	params := m.Params()
	nn.ZeroGrads(params)
	loss()
	dx := m.Backward(w.Clone())

	const h = 1e-4
	check := func(label string, data, grad []float32) {
		for i := range data {
			orig := data[i]
			data[i] = orig + h
			fp := loss()
			data[i] = orig - h
			fm := loss()
			data[i] = orig
			num := (fp - fm) / (2 * h)
			if math.Abs(num-float64(grad[i])) > 0.05*math.Max(1, math.Abs(num)) {
				t.Fatalf("%s grad[%d] = %v, numeric %v", label, i, grad[i], num)
			}
		}
	}
	check("input", x.Data, dx.Data)
	for _, p := range params {
		check(p.Name, p.W.Data, p.G.Data)
	}
}

// runDistSkewed drives the distributed layer on a heavily skewed
// batch (90% of each rank's tokens are one hot row) in dropless
// TokenChoice mode, returning per-rank outputs, input grads, and
// parameter grads.
func runDistSkewed(t *testing.T, algo A2AAlgo, cc CommConfig, seed uint64) (outs, dxs []*tensor.Tensor, grads []map[string]*tensor.Tensor) {
	t.Helper()
	const P, tokens, d = 4, 16, 8
	outs = make([]*tensor.Tensor, P)
	dxs = make([]*tensor.Tensor, P)
	grads = make([]map[string]*tensor.Tensor, P)
	w := mpi.NewWorld(P, distTestTopo())
	w.Run(func(c *mpi.Comm) {
		r := tensor.NewRNG(seed)
		cfg := gateCfg(d, 8, 2) // Mode zero value: dropless TokenChoice
		m := NewDistMoEComm("moe", r, cfg, 16, c, algo, cc)
		x := skewedBatch(seed+uint64(c.Rank()), tokens, d, 0.9)
		outs[c.Rank()] = m.Forward(x)
		dxs[c.Rank()] = m.Backward(tensor.Ones(tokens, d))
		g := map[string]*tensor.Tensor{}
		for _, p := range m.Params() {
			g[p.Name] = p.G.Clone()
		}
		grads[c.Rank()] = g
	})
	return outs, dxs, grads
}

// TestDroplessDistMoEOverlapMatchesBlocking: with a skewed dropless
// batch funneling most rows to one expert owner, the two-phase
// overlapped exchange must still be a pure scheduling change.
func TestDroplessDistMoEOverlapMatchesBlocking(t *testing.T) {
	for _, algo := range []A2AAlgo{Direct, Hierarchical} {
		t.Run(algo.String(), func(t *testing.T) {
			bOut, bDx, bG := runDistSkewed(t, algo, CommConfig{Codec: mpi.FP32Wire, Overlap: false}, 31)
			oOut, oDx, oG := runDistSkewed(t, algo, CommConfig{Codec: mpi.FP32Wire, Overlap: true}, 31)
			for rank := range bOut {
				if !oOut[rank].AllClose(bOut[rank], 1e-5) {
					t.Fatalf("rank %d: overlap forward differs from blocking", rank)
				}
				if !oDx[rank].AllClose(bDx[rank], 1e-5) {
					t.Fatalf("rank %d: overlap input grad differs from blocking", rank)
				}
				for name, want := range bG[rank] {
					if !oG[rank][name].AllClose(want, 1e-4) {
						t.Fatalf("rank %d: overlap grad %s differs from blocking", rank, name)
					}
				}
			}
		})
	}
}
