package moe

import (
	"math"
	"testing"

	"bagualu/internal/mpi"
	"bagualu/internal/nn"
	"bagualu/internal/simnet"
	"bagualu/internal/sunway"
	"bagualu/internal/tensor"
)

func gateCfg(d, e, k int) GateConfig {
	return GateConfig{Dim: d, NumExperts: e, TopK: k, CapacityFactor: 100} // effectively no drops
}

func TestGateConfigValidate(t *testing.T) {
	if err := gateCfg(4, 4, 2).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := gateCfg(4, 4, 5)
	if bad.Validate() == nil {
		t.Fatal("TopK > NumExperts accepted")
	}
	bad = gateCfg(4, 4, 1)
	bad.Mode = CapacityDrop
	bad.CapacityFactor = 0
	if bad.Validate() == nil {
		t.Fatal("zero capacity factor accepted in capacity-drop mode")
	}
	// Dropless token-choice ignores capacity entirely, so zero is fine.
	ok := gateCfg(4, 4, 1)
	ok.CapacityFactor = 0
	if err := ok.Validate(); err != nil {
		t.Fatalf("dropless config rejected: %v", err)
	}
	bad = gateCfg(4, 4, 1)
	bad.Mode = ExpertChoice
	bad.RandomRouting = true
	if bad.Validate() == nil {
		t.Fatal("expert-choice + random routing accepted")
	}
}

func TestCapacityFormula(t *testing.T) {
	c := GateConfig{Dim: 1, NumExperts: 8, TopK: 2, CapacityFactor: 1.25}
	// ceil(1.25 * 64 * 2 / 8) = 20
	if got := c.Capacity(64); got != 20 {
		t.Fatalf("Capacity(64) = %d, want 20", got)
	}
	// Minimum capacity is 1.
	c.CapacityFactor = 0.001
	if got := c.Capacity(1); got != 1 {
		t.Fatalf("tiny capacity = %d, want 1", got)
	}
}

func TestTopKIndices(t *testing.T) {
	row := []float32{0.1, 0.5, 0.2, 0.9}
	idx := topKIndices(row, 2, nil)
	if idx[0] != 3 || idx[1] != 1 {
		t.Fatalf("topK = %v", idx)
	}
	if got := topKIndices(row, 1, nil); got[0] != 3 {
		t.Fatalf("top1 = %v", got)
	}
}

func TestGateRoutingInvariants(t *testing.T) {
	r := tensor.NewRNG(1)
	cfg := gateCfg(8, 4, 2)
	g := NewGate("g", r, cfg)
	x := tensor.Randn(r, 1, 32, 8)
	routing := g.Forward(x)
	for t2, as := range routing.Assign {
		if len(as) != 2 {
			t.Fatalf("token %d has %d assignments", t2, len(as))
		}
		if as[0].Expert == as[1].Expert {
			t.Fatalf("token %d routed twice to expert %d", t2, as[0].Expert)
		}
		var sum float32
		for _, a := range as {
			if a.Weight <= 0 || a.Weight > 1 {
				t.Fatalf("weight %v out of range", a.Weight)
			}
			sum += a.Weight
		}
		if math.Abs(float64(sum)-1) > 1e-5 {
			t.Fatalf("token %d weights sum to %v", t2, sum)
		}
		if as[0].Weight < as[1].Weight {
			t.Fatalf("token %d weights not in descending order", t2)
		}
	}
	total := 0
	for _, c := range routing.Counts {
		total += c
	}
	if total+routing.Overflow != 32*2 {
		t.Fatalf("counts %d + overflow %d != 64", total, routing.Overflow)
	}
}

func TestGateCapacityEnforced(t *testing.T) {
	r := tensor.NewRNG(2)
	cfg := gateCfg(4, 4, 1)
	cfg.Mode = CapacityDrop // legacy ablation mode: the only one that drops
	cfg.CapacityFactor = 1  // tight: capacity = ceil(T/E)
	g := NewGate("g", r, cfg)
	// Force all tokens toward expert 0 by biasing the projection.
	g.Proj.Weight.W.Zero()
	for i := 0; i < 4; i++ {
		g.Proj.Weight.W.Set(10, i, 0)
	}
	x := tensor.Ones(16, 4)
	routing := g.Forward(x)
	capacity := cfg.Capacity(16) // 4
	if routing.Counts[0] != capacity {
		t.Fatalf("expert 0 count %d, want capacity %d", routing.Counts[0], capacity)
	}
	if routing.Overflow != 16-capacity {
		t.Fatalf("overflow %d, want %d", routing.Overflow, 16-capacity)
	}
	// Earlier tokens keep their slots.
	for t2 := 0; t2 < capacity; t2++ {
		if routing.Assign[t2][0].Dropped {
			t.Fatalf("token %d dropped despite arriving early", t2)
		}
	}
	for t2 := capacity; t2 < 16; t2++ {
		if !routing.Assign[t2][0].Dropped {
			t.Fatalf("token %d kept beyond capacity", t2)
		}
	}
}

func TestAuxLossBalancedVsSkewed(t *testing.T) {
	r := tensor.NewRNG(3)
	cfg := gateCfg(4, 8, 1)
	cfg.AuxLossWeight = 1

	// Near-uniform gate: aux ≈ 1.
	g := NewGate("g", r, cfg)
	g.Proj.Weight.W.Zero()
	x := tensor.Randn(r, 1, 64, 4)
	balanced := g.Forward(x).AuxLoss

	// Heavily skewed gate.
	g2 := NewGate("g2", r, cfg)
	g2.Proj.Weight.W.Zero()
	for i := 0; i < 4; i++ {
		g2.Proj.Weight.W.Set(10, i, 0)
	}
	skewed := g2.Forward(tensor.Ones(64, 4)).AuxLoss

	if math.Abs(float64(balanced)-1) > 0.3 {
		t.Fatalf("balanced aux = %v, want ~1", balanced)
	}
	if skewed < 4 {
		t.Fatalf("skewed aux = %v, want near %d", skewed, 8)
	}
}

func TestLocalMoEForwardShapeAndDeterminism(t *testing.T) {
	r := tensor.NewRNG(4)
	m := NewLocalMoE("moe", r, gateCfg(8, 4, 2), 16)
	x := tensor.Randn(r, 1, 10, 8)
	out1 := m.Forward(x).Clone()
	out2 := m.Forward(x)
	if !out1.SameShape(x) {
		t.Fatalf("output shape %v", out1.Shape)
	}
	if !out1.AllClose(out2, 0) {
		t.Fatal("MoE forward is not deterministic")
	}
}

func TestLocalMoESingleExpertMatchesFFN(t *testing.T) {
	// With one expert and top-1, MoE(x) must equal expert(x) exactly
	// (weight is 1).
	r := tensor.NewRNG(5)
	m := NewLocalMoE("moe", r, gateCfg(6, 1, 1), 12)
	x := tensor.Randn(r, 1, 5, 6)
	got := m.Forward(x)
	want := m.Experts[0].Forward(x)
	if !got.AllClose(want, 1e-5) {
		t.Fatal("single-expert MoE differs from plain FFN")
	}
}

func TestLocalMoEGradNumeric(t *testing.T) {
	r := tensor.NewRNG(6)
	cfg := gateCfg(4, 3, 2)
	cfg.AuxLossWeight = 0.1
	m := NewLocalMoE("moe", r, cfg, 8)
	x := tensor.Randn(r, 1, 6, 4)
	w := tensor.Randn(r, 1, 6, 4)

	loss := func() float64 {
		out := m.Forward(x)
		return float64(tensor.Dot(out, w)) + float64(m.AuxLoss())
	}

	// Analytic gradients.
	params := m.Params()
	nn.ZeroGrads(params)
	base := loss()
	_ = base
	dx := m.Backward(w.Clone())

	// h must stay small: larger perturbations flip discrete top-k
	// routing decisions, which are (correctly) not differentiated.
	const h = 1e-4
	check := func(label string, data, grad []float32) {
		for i := range data {
			orig := data[i]
			data[i] = orig + h
			fp := loss()
			data[i] = orig - h
			fm := loss()
			data[i] = orig
			num := (fp - fm) / (2 * h)
			if math.Abs(num-float64(grad[i])) > 0.05*math.Max(1, math.Abs(num)) {
				t.Fatalf("%s grad[%d] = %v, numeric %v", label, i, grad[i], num)
			}
		}
	}
	check("input", x.Data, dx.Data)
	for _, p := range params {
		check(p.Name, p.W.Data, p.G.Data)
	}
}

func TestLocalMoEDroppedTokensPassThrough(t *testing.T) {
	// A dropped token's MoE output must be exactly zero (the
	// transformer residual carries it).
	r := tensor.NewRNG(7)
	cfg := gateCfg(4, 2, 1)
	cfg.Mode = CapacityDrop   // dropping exists only in the legacy mode
	cfg.CapacityFactor = 0.01 // capacity 1 per expert
	m := NewLocalMoE("moe", r, cfg, 8)
	x := tensor.Randn(r, 1, 8, 4)
	out := m.Forward(x)
	routing := m.LastRouting()
	if routing.Overflow == 0 {
		t.Fatal("test needs overflow; tighten capacity")
	}
	for t2 := 0; t2 < 8; t2++ {
		if routing.Assign[t2][0].Dropped {
			for j := 0; j < 4; j++ {
				if out.At(t2, j) != 0 {
					t.Fatalf("dropped token %d has non-zero output", t2)
				}
			}
		}
	}
}

// distTestTopo gives 4 ranks spanning 2 supernodes.
func distTestTopo() *simnet.Topology {
	return simnet.New(sunway.TestMachine(2, 2), 1)
}

// runDist runs a 4-rank DistMoE forward/backward and returns per-rank
// outputs, input grads, and the summed expert/gate gradients.
func runDist(t *testing.T, algo A2AAlgo, seed uint64) (outs, dxs []*tensor.Tensor) {
	t.Helper()
	const P, tokens, d = 4, 6, 8
	outs = make([]*tensor.Tensor, P)
	dxs = make([]*tensor.Tensor, P)
	w := mpi.NewWorld(P, distTestTopo())
	w.Run(func(c *mpi.Comm) {
		r := tensor.NewRNG(seed)
		cfg := gateCfg(d, 8, 2)
		m := NewDistMoE("moe", r, cfg, 16, c, algo)
		xr := tensor.NewRNG(seed + 100 + uint64(c.Rank()))
		x := tensor.Randn(xr, 1, tokens, d)
		out := m.Forward(x)
		douts := tensor.Ones(tokens, d)
		dx := m.Backward(douts)
		outs[c.Rank()] = out
		dxs[c.Rank()] = dx
	})
	return outs, dxs
}

func TestDistMoEMatchesLocal(t *testing.T) {
	const P, tokens, d = 4, 6, 8
	seed := uint64(42)
	outs, dxs := runDist(t, Auto, seed)

	// Reference: per-rank LocalMoE with the same construction seed
	// holds all experts with identical weights, so outputs and input
	// gradients must match exactly.
	expertGradSum := map[string]*tensor.Tensor{}
	for rank := 0; rank < P; rank++ {
		r := tensor.NewRNG(seed)
		cfg := gateCfg(d, 8, 2)
		local := NewLocalMoE("moe", r, cfg, 16)
		xr := tensor.NewRNG(seed + 100 + uint64(rank))
		x := tensor.Randn(xr, 1, tokens, d)
		out := local.Forward(x)
		dx := local.Backward(tensor.Ones(tokens, d))
		if !outs[rank].AllClose(out, 1e-4) {
			t.Fatalf("rank %d: DistMoE forward differs from LocalMoE", rank)
		}
		if !dxs[rank].AllClose(dx, 1e-4) {
			t.Fatalf("rank %d: DistMoE input grad differs from LocalMoE", rank)
		}
		for _, p := range local.Params() {
			if acc, ok := expertGradSum[p.Name]; ok {
				tensor.AddInPlace(acc, p.G)
			} else {
				expertGradSum[p.Name] = p.G.Clone()
			}
		}
	}

	// Expert gradients in the distributed run must equal the sum of
	// the per-rank local gradients (each expert sees all its tokens).
	w := mpi.NewWorld(P, distTestTopo())
	w.Run(func(c *mpi.Comm) {
		r := tensor.NewRNG(seed)
		cfg := gateCfg(d, 8, 2)
		m := NewDistMoE("moe", r, cfg, 16, c, Auto)
		xr := tensor.NewRNG(seed + 100 + uint64(c.Rank()))
		x := tensor.Randn(xr, 1, tokens, d)
		m.Forward(x)
		m.Backward(tensor.Ones(tokens, d))
		for _, p := range m.ShardedParams() {
			want := expertGradSum[p.Name]
			if want == nil {
				t.Errorf("no reference grad for %s", p.Name)
				continue
			}
			if !p.G.AllClose(want, 1e-3) {
				t.Errorf("rank %d: %s grad differs from summed local reference", c.Rank(), p.Name)
			}
		}
	})
}

func TestDistMoEAlgorithmsAgree(t *testing.T) {
	base, baseDx := runDist(t, Direct, 7)
	for _, algo := range []A2AAlgo{Pairwise, Hierarchical, Auto} {
		outs, dxs := runDist(t, algo, 7)
		for rank := range outs {
			if !outs[rank].AllClose(base[rank], 1e-5) {
				t.Fatalf("%v: rank %d forward differs from direct", algo, rank)
			}
			if !dxs[rank].AllClose(baseDx[rank], 1e-5) {
				t.Fatalf("%v: rank %d backward differs from direct", algo, rank)
			}
		}
	}
}

func TestDistMoEParamPartition(t *testing.T) {
	w := mpi.NewWorld(2, nil)
	w.Run(func(c *mpi.Comm) {
		r := tensor.NewRNG(1)
		m := NewDistMoE("moe", r, gateCfg(4, 4, 1), 8, c, Auto)
		if m.LocalExperts != 2 {
			t.Errorf("LocalExperts = %d", m.LocalExperts)
		}
		if len(m.ShardedParams()) != 2*4 { // 2 experts x (2 linears x w+b)
			t.Errorf("sharded params = %d", len(m.ShardedParams()))
		}
		if len(m.ReplicatedParams()) != 1 {
			t.Errorf("replicated params = %d", len(m.ReplicatedParams()))
		}
		if got := len(m.Params()); got != len(m.ShardedParams())+len(m.ReplicatedParams()) {
			t.Errorf("Params() = %d", got)
		}
	})
}

func TestDistMoEIndivisibleExpertsPanics(t *testing.T) {
	w := mpi.NewWorld(3, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Run(func(c *mpi.Comm) {
		r := tensor.NewRNG(1)
		NewDistMoE("moe", r, gateCfg(4, 4, 1), 8, c, Auto)
	})
}

func TestGateNoiseChangesRouting(t *testing.T) {
	r := tensor.NewRNG(8)
	cfg := gateCfg(8, 16, 1)
	cfg.NoiseStd = 5
	g := NewGate("g", r, cfg)
	x := tensor.Randn(tensor.NewRNG(9), 1, 32, 8)
	r1 := g.Forward(x)
	r2 := g.Forward(x)
	same := true
	for t2 := range r1.Assign {
		if r1.Assign[t2][0].Expert != r2.Assign[t2][0].Expert {
			same = false
		}
	}
	if same {
		t.Fatal("high noise produced identical routing twice")
	}
}

func BenchmarkLocalMoEForward(b *testing.B) {
	r := tensor.NewRNG(1)
	cfg := gateCfg(64, 8, 2)
	m := NewLocalMoE("moe", r, cfg, 256)
	x := tensor.Randn(r, 1, 256, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func TestRandomRoutingBalancedAndGradFree(t *testing.T) {
	r := tensor.NewRNG(20)
	cfg := gateCfg(8, 4, 2)
	cfg.RandomRouting = true
	m := NewLocalMoE("moe", r, cfg, 16)
	x := tensor.Randn(r, 1, 200, 8)
	out := m.Forward(x)
	if out.Shape[0] != 200 {
		t.Fatalf("shape %v", out.Shape)
	}
	routing := m.LastRouting()
	// Uniform random: each expert should see roughly 200*2/4 = 100
	// assignments (pre-capacity, capacity is loose here).
	for e, cnt := range routing.Counts {
		if cnt < 60 || cnt > 140 {
			t.Fatalf("expert %d count %d far from uniform 100", e, cnt)
		}
	}
	// No gate gradient.
	nn.ZeroGrads(m.Params())
	m.Backward(tensor.Ones(200, 8))
	for _, v := range m.Gate.Proj.Weight.G.Data {
		if v != 0 {
			t.Fatal("random routing produced gate gradients")
		}
	}
	// Experts still receive gradients.
	var expertGrad float32
	for _, e := range m.Experts {
		for _, p := range e.Params() {
			expertGrad += tensor.Norm2(p.G)
		}
	}
	if expertGrad == 0 {
		t.Fatal("experts received no gradient under random routing")
	}
}

func TestRandomRoutingDistinctExperts(t *testing.T) {
	r := tensor.NewRNG(21)
	cfg := gateCfg(4, 3, 3) // topk == experts: must pick all distinct
	cfg.RandomRouting = true
	g := NewGate("g", r, cfg)
	routing := g.Forward(tensor.Ones(10, 4))
	for t2, as := range routing.Assign {
		seen := map[int]bool{}
		for _, a := range as {
			if seen[a.Expert] {
				t.Fatalf("token %d assigned twice to expert %d", t2, a.Expert)
			}
			seen[a.Expert] = true
		}
	}
}

func TestGradScalePropagates(t *testing.T) {
	// The aux gradient must scale linearly with SetGradScale.
	gradAt := func(scale float32) float32 {
		r := tensor.NewRNG(22)
		cfg := gateCfg(4, 3, 1)
		cfg.AuxLossWeight = 0.5
		m := NewLocalMoE("moe", r, cfg, 8)
		m.SetGradScale(scale)
		x := tensor.Randn(tensor.NewRNG(23), 1, 6, 4)
		m.Forward(x)
		nn.ZeroGrads(m.Params())
		// Zero main-loss gradient isolates the aux contribution.
		m.Backward(tensor.Zeros(6, 4))
		return tensor.Norm2(m.Gate.Proj.Weight.G)
	}
	g1 := gradAt(1)
	g2 := gradAt(2)
	if g1 == 0 {
		t.Fatal("no aux gradient at scale 1")
	}
	if math.Abs(float64(g2/g1-2)) > 1e-3 {
		t.Fatalf("aux grad did not scale: %v vs %v", g1, g2)
	}
}

func TestZLossValueAndGradient(t *testing.T) {
	r := tensor.NewRNG(24)
	cfg := gateCfg(4, 3, 1)
	cfg.ZLossWeight = 0.5
	m := NewLocalMoE("moe", r, cfg, 8)
	x := tensor.Randn(r, 1, 6, 4)
	w := tensor.Randn(r, 1, 6, 4)

	loss := func() float64 {
		out := m.Forward(x)
		return float64(tensor.Dot(out, w)) + float64(m.AuxLoss())
	}
	nn.ZeroGrads(m.Params())
	base := loss()
	if m.AuxLoss() <= 0 {
		t.Fatal("z-loss did not contribute to aux")
	}
	m.Backward(w.Clone())

	// Numeric check against the gate projection weights.
	p := m.Gate.Proj.Weight
	const h = 1e-4
	for i := 0; i < p.W.Len(); i++ {
		orig := p.W.Data[i]
		p.W.Data[i] = orig + h
		fp := loss()
		p.W.Data[i] = orig - h
		fm := loss()
		p.W.Data[i] = orig
		num := (fp - fm) / (2 * h)
		if math.Abs(num-float64(p.G.Data[i])) > 0.05*math.Max(1, math.Abs(num)) {
			t.Fatalf("z-loss grad[%d] = %v, numeric %v (base %v)", i, p.G.Data[i], num, base)
		}
	}
}

func TestZLossShrinksLogits(t *testing.T) {
	// Training with only the z-loss must drive gate logits toward
	// zero magnitude.
	r := tensor.NewRNG(25)
	cfg := gateCfg(4, 4, 1)
	cfg.ZLossWeight = 1
	m := NewLocalMoE("moe", r, cfg, 8)
	// Start with large gate weights.
	tensor.ScaleInPlace(m.Gate.Proj.Weight.W, 50)
	x := tensor.Randn(tensor.NewRNG(26), 1, 16, 4)
	before := tensor.Norm2(m.Gate.Proj.Weight.W)
	for step := 0; step < 50; step++ {
		m.Forward(x)
		nn.ZeroGrads(m.Params())
		m.Backward(tensor.Zeros(16, 4)) // only aux/z gradients
		tensor.AXPY(-0.5, m.Gate.Proj.Weight.G, m.Gate.Proj.Weight.W)
	}
	after := tensor.Norm2(m.Gate.Proj.Weight.W)
	if after >= before {
		t.Fatalf("z-loss did not shrink gate logits: %v -> %v", before, after)
	}
}
