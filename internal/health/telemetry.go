package health

import "bagualu/internal/mpi"

// Telemetry aggregation. Every rank holds one row of the observation
// matrix: the mean slowdown it measured on each incoming link since
// the last collection. CollectScores assembles the full matrix over
// the supernode hierarchy — members send their row to their supernode
// leader, leaders exchange blocks, leaders broadcast the matrix back
// down — and reduces each column to a per-rank slowness score.
//
// The column reduction is a minimum over observers: an observed link
// multiplier is max(sender slowdown, receiver slowdown), so every
// observation of rank r is an upper bound on r's own slowdown, and
// the tightest bound wins. This makes scoring robust to slow
// observers (a straggler sees everyone as slow, but its votes never
// undercut an honest one) and immune to retransmit-burst noise on
// individual links. Only when every observer of r is itself degraded
// can r be overestimated — at that point the distinction no longer
// matters for scheduling.

// Distinct p2p user-tag base so telemetry traffic can never alias
// expert-migration traffic (tag base 1<<20) or application tags.
const (
	tagRow    = 1 << 21
	tagBlock  = 1<<21 + 1
	tagMatrix = 1<<21 + 2
)

// CollectScores aggregates link observations over comm's supernode
// hierarchy and returns one slowness score per comm rank (1 =
// nominal). row is the caller's observation row indexed by comm rank
// (0 = no samples for that sender). Deterministic: identical rows on
// every rank yield identical scores regardless of scheduling. All
// ranks of comm must call it collectively.
func CollectScores(c *mpi.Comm, row []float64) []float64 {
	n := c.Size()
	if n == 1 {
		return []float64{1}
	}
	me := c.Rank()
	topo := c.Topology()

	// Supernode membership and leaders, derived identically everywhere
	// from the topology: a supernode's leader is its lowest comm rank.
	sn := make([]int, n)
	leaderOf := map[int]int{}
	var leaders []int
	for q := 0; q < n; q++ {
		sn[q] = topo.Supernode(c.Global(q))
		if _, ok := leaderOf[sn[q]]; !ok {
			leaderOf[sn[q]] = q
			leaders = append(leaders, q)
		}
	}
	myLeader := leaderOf[sn[me]]

	matrix := make([]float64, n*n)
	fill := func(r int, vals []float32) {
		for s := 0; s < n; s++ {
			matrix[r*n+s] = float64(vals[s])
		}
	}
	row32 := make([]float32, n)
	for s := 0; s < n; s++ {
		row32[s] = float32(row[s])
	}

	if me != myLeader {
		c.SendMsg(myLeader, tagRow, row32, nil)
		flat := c.Recv(myLeader, tagMatrix)
		for i, v := range flat {
			matrix[i] = float64(v)
		}
		return scoreColumns(matrix, n)
	}

	// Leader: gather member rows (ascending member order keeps the
	// exchange schedule deterministic).
	fill(me, row32)
	var members []int
	for q := 0; q < n; q++ {
		if sn[q] == sn[me] && q != me {
			members = append(members, q)
		}
	}
	for _, q := range members {
		r, _ := c.RecvMsg(q, tagRow)
		fill(q, r)
	}

	// Leaders exchange their supernode's block of rows.
	block := make([]float32, 0, (len(members)+1)*n)
	ints := make([]int, 0, len(members)+1)
	for q := 0; q < n; q++ {
		if sn[q] == sn[me] {
			ints = append(ints, q)
			for s := 0; s < n; s++ {
				block = append(block, float32(matrix[q*n+s]))
			}
		}
	}
	for _, l := range leaders {
		if l != me {
			c.SendMsg(l, tagBlock, block, ints)
		}
	}
	for _, l := range leaders {
		if l == me {
			continue
		}
		data, rows := c.RecvMsg(l, tagBlock)
		for i, r := range rows {
			fill(r, data[i*n:(i+1)*n])
		}
	}

	// Broadcast the assembled matrix down to members.
	flat := make([]float32, n*n)
	for i, v := range matrix {
		flat[i] = float32(v)
	}
	for _, q := range members {
		c.SendMsg(q, tagMatrix, flat, nil)
	}
	return scoreColumns(matrix, n)
}

// suspectMult is the raw-score level above which an observer's own
// row is distrusted in the refinement pass. Halfway between nominal
// and the default degradation threshold: high enough that retransmit
// noise never disqualifies an honest observer, low enough that a real
// straggler's votes are discarded well before it is formally Degraded.
const suspectMult = 1.5

// scoreColumns reduces column r of the observation matrix to rank r's
// slowness score in two passes. The first takes the minimum positive
// observation by any other rank — every observation is an upper bound
// (observed multiplier = max of the endpoints' slowdowns), so the
// tightest bound wins. The second discards rows whose observer is
// itself suspect under the first pass: with hierarchical collectives a
// rank's traffic may route exclusively through its supernode leader,
// and if that leader is the straggler it is the rank's ONLY observer —
// without the second pass every healthy member of a straggler-led
// supernode inherits the leader's slowdown. A rank left with no
// trustworthy observer scores 1: indistinguishable-from-its-leader is
// not evidence of slowness, and defaulting to healthy keeps mitigation
// from draining ranks on hearsay.
func scoreColumns(matrix []float64, n int) []float64 {
	minOver := func(r int, trust func(j int) bool) float64 {
		best := 0.0
		for j := 0; j < n; j++ {
			if j == r || !trust(j) {
				continue
			}
			if v := matrix[j*n+r]; v > 0 && (best == 0 || v < best) {
				best = v
			}
		}
		return best
	}
	raw := make([]float64, n)
	for r := 0; r < n; r++ {
		raw[r] = minOver(r, func(int) bool { return true })
	}
	scores := make([]float64, n)
	for r := 0; r < n; r++ {
		best := minOver(r, func(j int) bool { return raw[j] == 0 || raw[j] < suspectMult })
		if best == 0 {
			best = 1
		}
		scores[r] = best
	}
	return scores
}
