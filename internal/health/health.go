// Package health classifies ranks as healthy, degraded, or failed
// from link-delay telemetry, the middle tier of the graceful-
// degradation stack. The mpi runtime records the observed slowdown of
// every (sender -> receiver) link (see mpi transport telemetry); each
// training step those observations are aggregated over the supernode
// hierarchy (telemetry.go) into one slowness score per rank, and a
// Monitor folds the per-step scores through an EWMA with hysteresis
// so transient noise (a retransmit burst, one slow collective) does
// not flap the classification. Sustained degradation is what the
// parallel layer acts on — resharding experts away from the laggard —
// while failure remains the domain of the mpi failed bitmap.
package health

import "fmt"

// State is a rank's health classification.
type State int

const (
	// Healthy ranks run at nominal speed.
	Healthy State = iota
	// Degraded ranks show sustained link slowdown (stragglers); work
	// should be migrated away from them, but they remain correct.
	Degraded
	// Failed ranks are fail-stop dead (mirrors the mpi failed bitmap);
	// the monitor never reclassifies them.
	Failed
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Config tunes the classifier. Zero fields take the defaults noted on
// each field.
type Config struct {
	// Alpha is the EWMA weight of the newest score (default 0.5).
	Alpha float64
	// DegradedAt: an EWMA score at or above this multiplier counts as
	// degradation evidence (default 2.0).
	DegradedAt float64
	// RecoverAt: an EWMA score at or below this multiplier counts as
	// recovery evidence; the gap to DegradedAt is the hysteresis band
	// (default 1.5).
	RecoverAt float64
	// Window is the number of consecutive evidence steps required
	// before a state transition (default 3).
	Window int
	// MinDwell is the minimum number of observed samples a rank must
	// spend in a state before it may transition again (default
	// 2×Window). Without it, delay samples oscillating across the
	// hysteresis band flap the classification every Window steps —
	// and every flap is an expensive resharding or routing change
	// downstream. The dwell bounds transitions to at most one per
	// MinDwell samples regardless of how adversarial the input is.
	MinDwell int
}

func (c Config) withDefaults() Config {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.DegradedAt <= 1 {
		c.DegradedAt = 2.0
	}
	if c.RecoverAt <= 0 || c.RecoverAt >= c.DegradedAt {
		c.RecoverAt = 1 + (c.DegradedAt-1)/2
	}
	if c.Window <= 0 {
		c.Window = 3
	}
	if c.MinDwell <= 0 {
		c.MinDwell = 2 * c.Window
	}
	return c
}

// Monitor is the per-rank health state machine. It is driven from a
// single goroutine (each rank runs its own replica; identical inputs
// yield identical classifications, so no coordination is needed).
type Monitor struct {
	cfg   Config
	ewma  []float64
	seen  []bool
	hot   []int // consecutive steps of degradation evidence
	cool  []int // consecutive steps of recovery evidence
	since []int // observed samples since the last transition
	state []State
}

// NewMonitor creates a monitor over n ranks, all initially Healthy.
func NewMonitor(n int, cfg Config) *Monitor {
	m := &Monitor{
		cfg:   cfg.withDefaults(),
		ewma:  make([]float64, n),
		seen:  make([]bool, n),
		hot:   make([]int, n),
		cool:  make([]int, n),
		since: make([]int, n),
		state: make([]State, n),
	}
	// A fresh rank has no pending transition to damp: start every dwell
	// counter satisfied so the first classification is not delayed.
	for r := range m.since {
		m.since[r] = m.cfg.MinDwell
	}
	return m
}

// Observe folds one round of slowness scores (indexed like the
// monitor; 0 or negative = no sample this round) and returns the
// ranks whose classification changed, ascending.
func (m *Monitor) Observe(scores []float64) []int {
	var changed []int
	for r := 0; r < len(m.state) && r < len(scores); r++ {
		s := scores[r]
		if s <= 0 || m.state[r] == Failed {
			continue
		}
		if !m.seen[r] {
			m.ewma[r], m.seen[r] = s, true
		} else {
			m.ewma[r] += m.cfg.Alpha * (s - m.ewma[r])
		}
		if m.since[r] < m.cfg.MinDwell {
			m.since[r]++
		}
		switch e := m.ewma[r]; {
		case e >= m.cfg.DegradedAt:
			m.hot[r]++
			m.cool[r] = 0
		case e <= m.cfg.RecoverAt:
			m.cool[r]++
			m.hot[r] = 0
		default: // hysteresis band: no evidence either way
			m.hot[r], m.cool[r] = 0, 0
		}
		if m.since[r] < m.cfg.MinDwell {
			continue // still dwelling: evidence accumulates, no flip yet
		}
		switch {
		case m.state[r] == Healthy && m.hot[r] >= m.cfg.Window:
			m.state[r] = Degraded
			m.since[r] = 0
			changed = append(changed, r)
		case m.state[r] == Degraded && m.cool[r] >= m.cfg.Window:
			m.state[r] = Healthy
			m.since[r] = 0
			changed = append(changed, r)
		}
	}
	return changed
}

// MarkFailed pins a rank to Failed (fail-stop observed by the mpi
// layer). Irreversible — except through Reset, which models the slot
// being re-occupied by a fresh process.
func (m *Monitor) MarkFailed(r int) {
	if r >= 0 && r < len(m.state) {
		m.state[r] = Failed
	}
}

// Reset returns a rank to Healthy with a clean slate — no EWMA
// history, no evidence counters, dwell satisfied. A serving fleet
// calls it when a crashed replica's slot is re-occupied by a restored
// process: the new occupant's speed is independent of the old one's,
// so carrying the dead process's telemetry over would misclassify it.
func (m *Monitor) Reset(r int) {
	if r < 0 || r >= len(m.state) {
		return
	}
	m.state[r] = Healthy
	m.ewma[r] = 0
	m.seen[r] = false
	m.hot[r], m.cool[r] = 0, 0
	m.since[r] = m.cfg.MinDwell
}

// State returns a rank's current classification.
func (m *Monitor) State(r int) State { return m.state[r] }

// States returns a copy of all classifications.
func (m *Monitor) States() []State {
	return append([]State(nil), m.state...)
}

// Score returns a rank's current EWMA slowness multiplier (1 = nominal).
func (m *Monitor) Score(r int) float64 {
	if !m.seen[r] {
		return 1
	}
	return m.ewma[r]
}

// Degraded lists the ranks currently classified Degraded, ascending.
func (m *Monitor) Degraded() []int {
	var out []int
	for r, s := range m.state {
		if s == Degraded {
			out = append(out, r)
		}
	}
	return out
}
