package health

import (
	"reflect"
	"sync"
	"testing"

	"bagualu/internal/mpi"
	"bagualu/internal/simnet"
	"bagualu/internal/sunway"
)

// Degradation requires Window consecutive over-threshold EWMA steps;
// recovery requires Window consecutive under-threshold steps, with a
// hysteresis band between the two thresholds producing no evidence.
func TestMonitorHysteresis(t *testing.T) {
	m := NewMonitor(2, Config{Alpha: 1, DegradedAt: 2, RecoverAt: 1.5, Window: 2})
	feed := func(s float64) []int { return m.Observe([]float64{s, 1}) }

	if ch := feed(4); len(ch) != 0 {
		t.Fatalf("degraded after one step: %v", ch)
	}
	if ch := feed(4); !reflect.DeepEqual(ch, []int{0}) || m.State(0) != Degraded {
		t.Fatalf("not degraded after Window steps: %v state=%v", ch, m.State(0))
	}
	// In-band scores (1.5, 2) are not recovery evidence.
	feed(1.8)
	feed(1.8)
	if m.State(0) != Degraded {
		t.Fatal("recovered inside the hysteresis band")
	}
	feed(1.0)
	if m.State(0) != Degraded {
		t.Fatal("recovered after a single cool step")
	}
	if ch := feed(1.0); !reflect.DeepEqual(ch, []int{0}) || m.State(0) != Healthy {
		t.Fatalf("no recovery after Window cool steps: %v state=%v", ch, m.State(0))
	}
	if m.State(1) != Healthy {
		t.Fatalf("bystander flapped: %v", m.State(1))
	}
}

// A transient one-step spike must not flip the classification.
func TestMonitorIgnoresTransientSpike(t *testing.T) {
	m := NewMonitor(1, Config{}) // defaults: alpha .5, window 3
	for i := 0; i < 10; i++ {
		m.Observe([]float64{1})
	}
	m.Observe([]float64{8}) // retransmit burst
	for i := 0; i < 3; i++ {
		m.Observe([]float64{1})
	}
	if m.State(0) != Healthy {
		t.Fatalf("one spike degraded the rank: state=%v score=%v", m.State(0), m.Score(0))
	}
}

// Failed is terminal: scores never resurrect a dead rank, and missing
// samples (score 0) leave state untouched.
func TestMonitorFailedIsTerminal(t *testing.T) {
	m := NewMonitor(2, Config{})
	m.MarkFailed(1)
	for i := 0; i < 8; i++ {
		m.Observe([]float64{0, 1})
	}
	if m.State(1) != Failed {
		t.Fatalf("failed rank resurrected: %v", m.State(1))
	}
	if m.State(0) != Healthy {
		t.Fatalf("unsampled rank changed state: %v", m.State(0))
	}
}

// The min-over-observers column reduction must score a straggler at
// its own multiplier while keeping healthy ranks at ~1 even though
// the straggler observes everyone as slow.
func TestScoreColumnsRobustToSlowObservers(t *testing.T) {
	// 3 ranks, rank 2 is a 4x straggler: every link touching rank 2
	// is observed at 4 (max of endpoints), others at 1.
	n := 3
	matrix := make([]float64, n*n)
	obs := func(dst, src int, v float64) { matrix[dst*n+src] = v }
	obs(0, 1, 1)
	obs(0, 2, 4)
	obs(1, 0, 1)
	obs(1, 2, 4)
	obs(2, 0, 4) // the straggler's own receives look slow too
	obs(2, 1, 4)
	got := scoreColumns(matrix, n)
	want := []float64{1, 1, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scores %v, want %v", got, want)
	}
}

// End-to-end over a real world: run traffic with one straggler, feed
// each rank's observation row through the hierarchical collection,
// and check every rank agrees on the scores, deterministically.
func TestCollectScoresEndToEnd(t *testing.T) {
	run := func() [][]float64 {
		topo := simnet.New(sunway.TestMachine(2, 2), 1) // 4 ranks, 2 supernodes
		w := mpi.NewWorld(4, topo)
		w.SetRankDelay(2, 4)
		out := make([][]float64, 4)
		var mu sync.Mutex
		w.Run(func(c *mpi.Comm) {
			// All-pairs traffic (the shape of the MoE all-to-all) so
			// every rank is observed directly by every other: a rank
			// whose only observer is a straggler cannot be
			// distinguished from one.
			buf := make([]float32, 2048)
			for iter := 0; iter < 3; iter++ {
				for p := 0; p < c.Size(); p++ {
					if p != c.Rank() {
						c.Send(p, iter, buf)
					}
				}
				for p := 0; p < c.Size(); p++ {
					if p != c.Rank() {
						c.Recv(p, iter)
					}
				}
			}
			scores := CollectScores(c, c.TakeLinkObservations())
			mu.Lock()
			out[c.Rank()] = scores
			mu.Unlock()
		})
		return out
	}
	first := run()
	for r := 1; r < 4; r++ {
		if !reflect.DeepEqual(first[r], first[0]) {
			t.Fatalf("rank %d disagrees: %v vs %v", r, first[r], first[0])
		}
	}
	s := first[0]
	if s[2] < 3.5 {
		t.Fatalf("straggler not detected: scores %v", s)
	}
	for _, r := range []int{0, 1, 3} {
		if s[r] > 1.5 {
			t.Fatalf("healthy rank %d over-scored: %v", r, s)
		}
	}
	if again := run(); !reflect.DeepEqual(again, first) {
		t.Fatalf("nondeterministic scores: %v vs %v", again, first)
	}
}

// Adversarial oscillation across the hysteresis band must not flap the
// classification: the dwell time bounds transitions to at most one per
// MinDwell observed samples, however the input alternates.
func TestMonitorDwellBoundsFlapping(t *testing.T) {
	const steps, dwell = 64, 8
	// Window 1 + alpha 1 is the worst case: every sample is instant
	// evidence, so without the dwell the state would flip every step.
	m := NewMonitor(1, Config{Alpha: 1, DegradedAt: 2, RecoverAt: 1.5, Window: 1, MinDwell: dwell})
	transitions := 0
	for i := 0; i < steps; i++ {
		s := 4.0 // degradation evidence
		if i%2 == 1 {
			s = 1.0 // recovery evidence
		}
		transitions += len(m.Observe([]float64{s}))
	}
	if max := steps/dwell + 1; transitions > max {
		t.Fatalf("oscillating samples caused %d transitions in %d steps (dwell %d allows at most %d)",
			transitions, steps, dwell, max)
	}
	if transitions == 0 {
		t.Fatal("dwell suppressed classification entirely")
	}
}

// Reset returns a rank to a fresh Healthy record: a restored replica
// is a new process whose old telemetry (including a terminal Failed
// mark) must not bias its new incarnation, and its first
// classification is not dwell-delayed.
func TestMonitorResetClearsHistory(t *testing.T) {
	m := NewMonitor(2, Config{Alpha: 1, DegradedAt: 2, RecoverAt: 1.5, Window: 2, MinDwell: 2})
	m.MarkFailed(0)
	if m.State(0) != Failed {
		t.Fatal("MarkFailed did not fail the rank")
	}
	m.Reset(0)
	if m.State(0) != Healthy || m.Score(0) != 1 {
		t.Fatalf("reset rank not fresh (score 1 = nominal): state=%v score=%v", m.State(0), m.Score(0))
	}
	// Fresh incarnation degrades after exactly Window evidence steps —
	// no leftover dwell from the previous life.
	m.Observe([]float64{4, 1})
	if ch := m.Observe([]float64{4, 1}); len(ch) != 1 || ch[0] != 0 || m.State(0) != Degraded {
		t.Fatalf("reset rank did not classify freshly: %v state=%v", ch, m.State(0))
	}
	if m.State(1) != Healthy {
		t.Fatal("bystander disturbed by reset")
	}
}
