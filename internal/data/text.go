package data

import (
	"fmt"
	"io"

	"bagualu/internal/tensor"
)

// TextCorpus serves byte-level language-modeling batches from real
// text, so the library trains on user data as well as the synthetic
// generator. Tokens are raw bytes (vocab 256); sequences are sampled
// at random offsets from the underlying buffer.
type TextCorpus struct {
	text   []byte
	seqLen int
	rng    *tensor.RNG
	cfg    CorpusConfig
}

// ByteVocab is the vocabulary size of byte-level text corpora.
const ByteVocab = 256

// NewTextCorpus reads all of r and serves random seqLen windows.
func NewTextCorpus(r io.Reader, seqLen int, seed uint64) (*TextCorpus, error) {
	text, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return NewTextCorpusFromBytes(text, seqLen, seed)
}

// NewTextCorpusFromBytes wraps an in-memory buffer.
func NewTextCorpusFromBytes(text []byte, seqLen int, seed uint64) (*TextCorpus, error) {
	if seqLen < 1 {
		return nil, fmt.Errorf("data: seq len %d", seqLen)
	}
	if len(text) < seqLen+2 {
		return nil, fmt.Errorf("data: text of %d bytes is too short for seq len %d", len(text), seqLen)
	}
	return &TextCorpus{
		text:   text,
		seqLen: seqLen,
		rng:    tensor.NewRNG(seed),
		cfg:    CorpusConfig{Vocab: ByteVocab, SeqLen: seqLen, Seed: seed},
	}, nil
}

// Config reports the equivalent corpus configuration (byte vocab).
func (c *TextCorpus) Config() CorpusConfig { return c.cfg }

// Len returns the underlying text size in bytes.
func (c *TextCorpus) Len() int { return len(c.text) }

// Batch returns b random windows: ids and next-byte targets, each of
// length b*seqLen.
func (c *TextCorpus) Batch(b int) (ids, targets []int) {
	ids = make([]int, 0, b*c.seqLen)
	targets = make([]int, 0, b*c.seqLen)
	for i := 0; i < b; i++ {
		start := c.rng.Intn(len(c.text) - c.seqLen - 1)
		for j := 0; j < c.seqLen; j++ {
			ids = append(ids, int(c.text[start+j]))
			targets = append(targets, int(c.text[start+j+1]))
		}
	}
	return ids, targets
}

// Decode renders byte token ids back to a string (non-printable bytes
// pass through untouched).
func Decode(ids []int) string {
	out := make([]byte, len(ids))
	for i, id := range ids {
		out[i] = byte(id)
	}
	return string(out)
}

// Encode converts a string to byte token ids.
func Encode(s string) []int {
	out := make([]int, len(s))
	for i := range s {
		out[i] = int(s[i])
	}
	return out
}
