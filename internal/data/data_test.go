package data

import (
	"strings"
	"testing"
)

func cfg() CorpusConfig {
	return CorpusConfig{Vocab: 64, SeqLen: 16, Zipf: 1.0, Determinism: 0.8, Seed: 1}
}

func TestValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg()
	bad.Vocab = 1
	if bad.Validate() == nil {
		t.Fatal("vocab 1 accepted")
	}
	bad = cfg()
	bad.Determinism = 1.5
	if bad.Validate() == nil {
		t.Fatal("determinism 1.5 accepted")
	}
	bad = cfg()
	bad.ImageFrac = 1
	if bad.Validate() == nil {
		t.Fatal("image fraction 1 accepted")
	}
}

func TestBatchShapes(t *testing.T) {
	c, err := NewSynthetic(cfg())
	if err != nil {
		t.Fatal(err)
	}
	ids, targets := c.Batch(3)
	if len(ids) != 3*16 || len(targets) != 3*16 {
		t.Fatalf("batch lengths %d/%d", len(ids), len(targets))
	}
	for i, id := range ids {
		if id < 0 || id >= 64 {
			t.Fatalf("id[%d] = %d out of vocab", i, id)
		}
		if targets[i] < 0 || targets[i] >= 64 {
			t.Fatalf("target[%d] = %d out of vocab", i, targets[i])
		}
	}
}

func TestTargetsAreShiftedIDs(t *testing.T) {
	c, _ := NewSynthetic(cfg())
	seq := c.NextSequence()
	if len(seq) != 17 {
		t.Fatalf("sequence length %d", len(seq))
	}
	// Batch targets are the ids shifted by one within each sequence.
	c2, _ := NewSynthetic(cfg())
	ids, targets := c2.Batch(1)
	for i := 0; i < 15; i++ {
		if targets[i] != ids[i+1] {
			t.Fatalf("target[%d] = %d, ids[%d] = %d", i, targets[i], i+1, ids[i+1])
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a, _ := NewSynthetic(cfg())
	b, _ := NewSynthetic(cfg())
	ai, at := a.Batch(2)
	bi, bt := b.Batch(2)
	for i := range ai {
		if ai[i] != bi[i] || at[i] != bt[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := cfg()
	c.Seed = 2
	d, _ := NewSynthetic(c)
	di, _ := d.Batch(2)
	same := true
	for i := range ai {
		if ai[i] != di[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestZipfSkewControlsConcentration(t *testing.T) {
	concentration := func(zipf float64) float64 {
		c := cfg()
		c.Zipf = zipf
		c.Determinism = 0 // pure marginal draws
		corp, _ := NewSynthetic(c)
		h := corp.TokenHistogram(400)
		total, top := 0, 0
		max4 := make([]int, 4)
		for _, n := range h {
			total += n
			for i := range max4 {
				if n > max4[i] {
					copy(max4[i+1:], max4[i:3])
					max4[i] = n
					break
				}
			}
		}
		for _, n := range max4 {
			top += n
		}
		return float64(top) / float64(total)
	}
	uniform := concentration(0)
	skewed := concentration(1.5)
	if skewed <= uniform+0.1 {
		t.Fatalf("zipf 1.5 concentration %v !> uniform %v", skewed, uniform)
	}
}

func TestDeterminismMakesSequencesLearnable(t *testing.T) {
	// With determinism=1 and no image tokens, consecutive text tokens
	// must follow the affine rule most of the time.
	c := cfg()
	c.Determinism = 1
	c.ImageFrac = 0
	corp, _ := NewSynthetic(c)
	follows, total := 0, 0
	for s := 0; s < 50; s++ {
		seq := corp.NextSequence()
		for i := 0; i+1 < len(seq); i++ {
			total++
			if seq[i+1] == (seq[i]*3+1)%corp.TextVocab() {
				follows++
			}
		}
	}
	if float64(follows)/float64(total) < 0.9 {
		t.Fatalf("affine rule followed only %d/%d transitions", follows, total)
	}
}

func TestImageTokensAppear(t *testing.T) {
	c := cfg()
	c.ImageFrac = 0.5
	corp, err := NewSynthetic(c)
	if err != nil {
		t.Fatal(err)
	}
	if corp.TextVocab() != 32 {
		t.Fatalf("text vocab %d, want 32", corp.TextVocab())
	}
	h := corp.TokenHistogram(200)
	img := 0
	for i := corp.TextVocab(); i < len(h); i++ {
		img += h[i]
	}
	if img == 0 {
		t.Fatal("no image tokens generated despite ImageFrac=0.5")
	}
}

func TestNoImageTokensWhenDisabled(t *testing.T) {
	c := cfg()
	c.ImageFrac = 0
	corp, _ := NewSynthetic(c)
	if corp.TextVocab() != c.Vocab {
		t.Fatalf("text vocab %d != vocab %d", corp.TextVocab(), c.Vocab)
	}
}

func TestTextCorpusBatches(t *testing.T) {
	text := []byte("the quick brown fox jumps over the lazy dog. ")
	c, err := NewTextCorpusFromBytes(text, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids, targets := c.Batch(3)
	if len(ids) != 24 || len(targets) != 24 {
		t.Fatalf("lengths %d/%d", len(ids), len(targets))
	}
	// Every window is a contiguous slice of the text with targets
	// shifted by one.
	for i := 0; i < 3; i++ {
		for j := 0; j < 7; j++ {
			if targets[i*8+j] != ids[i*8+j+1] {
				t.Fatal("targets are not shifted ids inside a window")
			}
		}
	}
	for _, id := range ids {
		if id < 0 || id >= ByteVocab {
			t.Fatalf("id %d out of byte vocab", id)
		}
	}
}

func TestTextCorpusFromReader(t *testing.T) {
	c, err := NewTextCorpus(strings.NewReader("hello world, hello world, hello"), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 31 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Config().Vocab != ByteVocab || c.Config().SeqLen != 4 {
		t.Fatalf("config %+v", c.Config())
	}
}

func TestTextCorpusTooShort(t *testing.T) {
	if _, err := NewTextCorpusFromBytes([]byte("hi"), 8, 1); err == nil {
		t.Fatal("short text accepted")
	}
	if _, err := NewTextCorpusFromBytes([]byte("long enough"), 0, 1); err == nil {
		t.Fatal("zero seq len accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := "BaGuaLu: 37M cores"
	if Decode(Encode(s)) != s {
		t.Fatal("encode/decode round trip failed")
	}
}

func TestTextCorpusDeterministic(t *testing.T) {
	text := []byte("abcdefghijklmnopqrstuvwxyz0123456789")
	a, _ := NewTextCorpusFromBytes(text, 6, 7)
	b, _ := NewTextCorpusFromBytes(text, 6, 7)
	ai, _ := a.Batch(4)
	bi, _ := b.Batch(4)
	for i := range ai {
		if ai[i] != bi[i] {
			t.Fatal("same seed produced different text batches")
		}
	}
}
