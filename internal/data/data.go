// Package data generates the synthetic pretraining corpus used by
// the reproduction. BaGuaLu pretrained a multimodal (text + image
// token) model on a proprietary corpus; what the experiments actually
// depend on is (a) a learnable sequence distribution and (b) a
// controllable skew in token statistics, because skew is what
// stresses MoE gate load balance. This generator provides both:
// sequences follow a noisy affine Markov rule (learnable by a small
// transformer) and token frequencies follow a Zipf law with a
// configurable exponent.
package data

import (
	"fmt"
	"math"

	"bagualu/internal/tensor"
)

// CorpusConfig parameterizes the synthetic corpus.
type CorpusConfig struct {
	Vocab  int
	SeqLen int

	// Zipf is the exponent of the marginal token distribution;
	// 0 = uniform, ~1 = natural-language-like skew. Higher values
	// concentrate probability on few tokens and stress the MoE gate.
	Zipf float64

	// Determinism is the probability that the next token follows the
	// affine Markov rule (the learnable signal); the rest are fresh
	// Zipf draws. 0 yields i.i.d. noise, 1 a fully deterministic
	// sequence.
	Determinism float64

	// ImageFrac reserves the top fraction of the vocabulary as
	// "image tokens": sequences switch between a text segment and an
	// image segment, mimicking the multimodal M6-style inputs.
	ImageFrac float64

	Seed uint64
}

// Validate checks the configuration.
func (c CorpusConfig) Validate() error {
	switch {
	case c.Vocab < 2 || c.SeqLen < 1:
		return fmt.Errorf("data: vocab %d / seqlen %d too small", c.Vocab, c.SeqLen)
	case c.Zipf < 0 || c.Determinism < 0 || c.Determinism > 1:
		return fmt.Errorf("data: invalid zipf %v / determinism %v", c.Zipf, c.Determinism)
	case c.ImageFrac < 0 || c.ImageFrac >= 1:
		return fmt.Errorf("data: image fraction %v out of [0,1)", c.ImageFrac)
	}
	return nil
}

// Corpus is a deterministic, seekable stream of training sequences.
type Corpus struct {
	cfg CorpusConfig
	rng *tensor.RNG
	cdf []float64 // Zipf CDF over the text vocabulary
	tv  int       // text vocab size (rest are image tokens)
}

// NewSynthetic builds a corpus generator.
func NewSynthetic(cfg CorpusConfig) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Corpus{cfg: cfg, rng: tensor.NewRNG(cfg.Seed)}
	c.tv = cfg.Vocab - int(float64(cfg.Vocab)*cfg.ImageFrac)
	if c.tv < 2 {
		c.tv = 2
	}
	// Zipf CDF over text tokens.
	c.cdf = make([]float64, c.tv)
	var sum float64
	for i := 0; i < c.tv; i++ {
		sum += 1 / math.Pow(float64(i+1), cfg.Zipf)
		c.cdf[i] = sum
	}
	for i := range c.cdf {
		c.cdf[i] /= sum
	}
	return c, nil
}

// Config returns the corpus configuration.
func (c *Corpus) Config() CorpusConfig { return c.cfg }

// RNGState returns the data-order stream position. Together with the
// corpus configuration it fully determines every future batch, so a
// checkpoint that stores it can resume bit-exactly mid-corpus.
func (c *Corpus) RNGState() uint64 { return c.rng.State() }

// SetRNGState repositions the data-order stream at a captured state.
func (c *Corpus) SetRNGState(s uint64) { c.rng.SetState(s) }

// TextVocab returns the number of text tokens (ids below this are
// text; ids at or above are image tokens).
func (c *Corpus) TextVocab() int { return c.tv }

// sampleZipf draws a text token from the Zipf marginal.
func (c *Corpus) sampleZipf(r *tensor.RNG) int {
	u := r.Float64()
	lo, hi := 0, len(c.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// NextSequence produces one sequence of SeqLen+1 tokens (the extra
// token supplies the final next-token target).
func (c *Corpus) NextSequence() []int {
	cfg := c.cfg
	seq := make([]int, cfg.SeqLen+1)
	cur := c.sampleZipf(c.rng)
	inImage := false
	imgVocab := cfg.Vocab - c.tv
	for i := range seq {
		// Occasionally switch modality if image tokens exist.
		if imgVocab > 0 && c.rng.Float64() < 0.05 {
			inImage = !inImage
		}
		seq[i] = cur
		if inImage && imgVocab > 0 {
			// Image segments: affine walk inside the image region.
			nxt := c.tv + ((cur*5+7)%imgVocab+imgVocab)%imgVocab
			if c.rng.Float64() >= cfg.Determinism {
				nxt = c.tv + c.rng.Intn(imgVocab)
			}
			cur = nxt
			continue
		}
		if c.rng.Float64() < cfg.Determinism {
			cur = (cur*3 + 1) % c.tv // learnable affine rule
		} else {
			cur = c.sampleZipf(c.rng)
		}
	}
	return seq
}

// Batch materializes a flattened batch of b sequences: ids and
// next-token targets, each of length b*SeqLen.
func (c *Corpus) Batch(b int) (ids, targets []int) {
	ids = make([]int, 0, b*c.cfg.SeqLen)
	targets = make([]int, 0, b*c.cfg.SeqLen)
	for i := 0; i < b; i++ {
		seq := c.NextSequence()
		ids = append(ids, seq[:c.cfg.SeqLen]...)
		targets = append(targets, seq[1:]...)
	}
	return ids, targets
}

// TokenHistogram counts token occurrences over n sequences; the load
// balance experiments use it to verify the configured skew.
func (c *Corpus) TokenHistogram(n int) []int {
	h := make([]int, c.cfg.Vocab)
	for i := 0; i < n; i++ {
		for _, t := range c.NextSequence() {
			h[t]++
		}
	}
	return h
}
