package tensor

import (
	"fmt"
	"testing"
)

// Grouped-GEMM tests pin two contracts at once: numerical agreement
// with the per-block reference kernels, and *bitwise* agreement — the
// grouped kernels promise that group g's output equals running the
// standalone kernel on that block alone, which is what lets the MoE
// layer swap its per-expert loop for one batched call without moving
// any test tolerance.

// groupedFixture builds a random activation matrix with the given
// per-group row counts and one random weight per group.
func groupedFixture(seed uint64, rows []int, k, n int, transB bool) (a *Tensor, off []int, bs []*Tensor) {
	r := NewRNG(seed)
	off = make([]int, len(rows)+1)
	for g, c := range rows {
		off[g+1] = off[g] + c
	}
	a = Randn(r, 1, off[len(rows)], k)
	bs = make([]*Tensor, len(rows))
	for g := range bs {
		if transB {
			bs[g] = Randn(r, 1, n, k)
		} else {
			bs[g] = Randn(r, 1, k, n)
		}
	}
	return a, off, bs
}

func bitwiseEq(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d differs bitwise: %v vs %v", name, i, got[i], want[i])
		}
	}
}

func TestGroupedMatMulBitwiseTiledRegime(t *testing.T) {
	// k=n=64, 40 total rows: 40*64*64 = 163840 ≥ gemmTiledMin, so the
	// grouped call runs tiled. Per-block reference is the forced tiled
	// kernel — bitwise equality proves tiles never span groups.
	rows := []int{17, 0, 1, 22}
	a, off, bs := groupedFixture(1, rows, 64, 64, false)
	if !GroupedUsesTiled(off[len(rows)], 64, 64) {
		t.Fatal("fixture should clear the tiled threshold")
	}
	out := New(off[len(rows)], 64)
	GroupedMatMulInto(out, a, off, bs)
	for g := range bs {
		if rows[g] == 0 {
			continue
		}
		blk := a.RowsView(off[g], off[g+1])
		want := MatMulTiled(blk, bs[g])
		bitwiseEq(t, fmt.Sprintf("group %d", g), out.RowsView(off[g], off[g+1]).Data, want.Data)
	}
}

func TestGroupedMatMulBitwiseNaiveRegime(t *testing.T) {
	// 6 rows at k=n=8: far under the threshold, so the grouped call
	// must match the unblocked i-k-j loop per block.
	rows := []int{2, 3, 0, 1}
	a, off, bs := groupedFixture(2, rows, 8, 8, false)
	if GroupedUsesTiled(off[len(rows)], 8, 8) {
		t.Fatal("fixture should stay under the tiled threshold")
	}
	out := New(off[len(rows)], 8)
	GroupedMatMulInto(out, a, off, bs)
	for g := range bs {
		if rows[g] == 0 {
			continue
		}
		blk := a.RowsView(off[g], off[g+1])
		want := MatMulNaive(blk, bs[g])
		bitwiseEq(t, fmt.Sprintf("group %d", g), out.RowsView(off[g], off[g+1]).Data, want.Data)
	}
}

func TestGroupedMatMulTransBBitwise(t *testing.T) {
	// Tiled regime.
	rows := []int{19, 2, 21}
	a, off, bs := groupedFixture(3, rows, 64, 64, true)
	out := New(off[len(rows)], 64)
	GroupedMatMulTransBInto(out, a, off, bs)
	for g := range bs {
		blk := a.RowsView(off[g], off[g+1])
		want := MatMulTransBTiled(blk, bs[g])
		bitwiseEq(t, fmt.Sprintf("tiled group %d", g), out.RowsView(off[g], off[g+1]).Data, want.Data)
	}

	// Naive regime.
	rows = []int{1, 4}
	a, off, bs = groupedFixture(4, rows, 8, 8, true)
	out = New(off[len(rows)], 8)
	GroupedMatMulTransBInto(out, a, off, bs)
	for g := range bs {
		blk := a.RowsView(off[g], off[g+1])
		want := MatMulTransBNaive(blk, bs[g])
		bitwiseEq(t, fmt.Sprintf("naive group %d", g), out.RowsView(off[g], off[g+1]).Data, want.Data)
	}
}

func TestGroupedMatMulTransABitwiseAccumulate(t *testing.T) {
	// The weight-gradient kernel accumulates in place. Starting from a
	// zeroed gradient the result is bitwise AddInPlace(grad,
	// MatMulTransA) per block — same streaming add sequence. Starting
	// from a non-zero gradient (micro-batch accumulation) it adds on
	// top; that path reassociates against compute-then-add, so it is
	// pinned with a tolerance instead.
	rows := []int{9, 0, 14, 3}
	r := NewRNG(5)
	din, n := 24, 16
	off := make([]int, len(rows)+1)
	for g, c := range rows {
		off[g+1] = off[g] + c
	}
	a := Randn(r, 1, off[len(rows)], din)
	b := Randn(r, 1, off[len(rows)], n)

	outs := make([]*Tensor, len(rows))
	for g := range outs {
		outs[g] = New(din, n)
	}
	GroupedMatMulTransAInto(outs, a, b, off)
	for g := range outs {
		want := New(din, n)
		if rows[g] > 0 {
			AddInPlace(want, MatMulTransA(a.RowsView(off[g], off[g+1]), b.RowsView(off[g], off[g+1])))
		}
		bitwiseEq(t, fmt.Sprintf("zeroed group %d", g), outs[g].Data, want.Data)
	}

	// Accumulate a second pass on top of the first: result ≈ 2× the
	// single pass.
	GroupedMatMulTransAInto(outs, a, b, off)
	for g := range outs {
		single := New(din, n)
		if rows[g] > 0 {
			AddInPlace(single, MatMulTransA(a.RowsView(off[g], off[g+1]), b.RowsView(off[g], off[g+1])))
		}
		for i, v := range outs[g].Data {
			w := 2 * single.Data[i]
			if d := v - w; d > 1e-4 || d < -1e-4 {
				t.Fatalf("accumulate group %d: element %d = %v, want ≈ %v", g, i, v, w)
			}
		}
	}
}

func TestGroupedSkewedBatchStaysTiled(t *testing.T) {
	// Regression for the dispatch decision the grouped kernel exists
	// for: one hot expert plus many one-row cold experts. Per-expert
	// dispatch would run every cold block through the naive loop
	// (1*64*64 < gemmTiledMin); the grouped call decides on the total
	// and runs everything — cold rows included — through the tiled
	// kernel, bitwise matching the forced tiled kernel per block.
	rows := []int{120, 1, 1, 1, 1, 1, 1, 1, 1}
	k, n := 64, 64
	a, off, bs := groupedFixture(6, rows, k, n, false)

	if !GroupedUsesTiled(off[len(rows)], k, n) {
		t.Fatal("skewed batch total must clear the tiled threshold")
	}
	for g := 1; g < len(rows); g++ {
		if useTiled(rows[g], k, n) {
			t.Fatalf("cold expert %d would clear the threshold alone; fixture broken", g)
		}
	}
	out := New(off[len(rows)], n)
	GroupedMatMulInto(out, a, off, bs)
	for g := range bs {
		blk := a.RowsView(off[g], off[g+1])
		want := MatMulTiled(blk, bs[g])
		bitwiseEq(t, fmt.Sprintf("group %d", g), out.RowsView(off[g], off[g+1]).Data, want.Data)
	}
}

// TestGroupedKernelDeterministicReplay is the seeded-replay gate run
// with -count=2 by verify.sh: two processes (or two in-process runs)
// with the same seed must produce bitwise identical grouped-GEMM
// results despite the worker-parallel panel packing.
func TestGroupedKernelDeterministicReplay(t *testing.T) {
	run := func() ([]float32, []float32, []float32) {
		rows := []int{33, 1, 0, 30, 2}
		a, off, bs := groupedFixture(7, rows, 64, 64, false)
		out := New(off[len(rows)], 64)
		GroupedMatMulInto(out, a, off, bs)

		dout := Randn(NewRNG(8), 1, off[len(rows)], 64)
		dx := New(off[len(rows)], 64)
		tb := make([]*Tensor, len(bs))
		for g := range tb {
			tb[g] = Transpose(bs[g])
		}
		GroupedMatMulTransBInto(dx, dout, off, tb)

		grads := make([]*Tensor, len(bs))
		for g := range grads {
			grads[g] = New(64, 64)
		}
		GroupedMatMulTransAInto(grads, a, dout, off)
		flat := []float32{}
		for _, gr := range grads {
			flat = append(flat, gr.Data...)
		}
		return out.Data, dx.Data, flat
	}
	o1, d1, g1 := run()
	o2, d2, g2 := run()
	bitwiseEq(t, "forward", o1, o2)
	bitwiseEq(t, "dx", d1, d2)
	bitwiseEq(t, "grads", g1, g2)
}

func TestGroupedEmptyAndSingleGroup(t *testing.T) {
	// All-empty call is a no-op; a single group must match MatMul's own
	// dispatch decision exactly (same kernel choice on the same shape).
	a := New(0, 8)
	out := New(0, 8)
	GroupedMatMulInto(out, a, []int{0, 0}, []*Tensor{New(8, 8)})

	r := NewRNG(9)
	a = Randn(r, 1, 40, 64)
	b := Randn(r, 1, 64, 64)
	out = New(40, 64)
	GroupedMatMulInto(out, a, []int{0, 40}, []*Tensor{b})
	want := MatMul(a, b)
	bitwiseEq(t, "single group", out.Data, want.Data)
}
