package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	a := New(3, 4, 5)
	if a.Len() != 60 {
		t.Fatalf("Len = %d, want 60", a.Len())
	}
	if a.Rank() != 3 || a.Dim(0) != 3 || a.Dim(2) != 5 {
		t.Fatalf("bad shape: %v", a.Shape)
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("New tensor not zeroed")
		}
	}
}

func TestFullOnes(t *testing.T) {
	a := Full(2.5, 2, 2)
	for _, v := range a.Data {
		if v != 2.5 {
			t.Fatalf("Full element = %v", v)
		}
	}
	b := Ones(4)
	if Sum(b) != 4 {
		t.Fatalf("Ones sum = %v", Sum(b))
	}
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	a := FromSlice(d, 2, 2)
	d[0] = 9
	if a.At(0, 0) != 9 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeInference(t *testing.T) {
	a := New(4, 6)
	b := a.Reshape(2, -1)
	if b.Shape[1] != 12 {
		t.Fatalf("inferred dim = %d, want 12", b.Shape[1])
	}
	b.Data[0] = 7
	if a.Data[0] != 7 {
		t.Fatal("Reshape must share data")
	}
}

func TestReshapePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4).Reshape(3)
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(2, 3)
	a.Set(5, 1, 2)
	if a.At(1, 2) != 5 {
		t.Fatal("At/Set round trip failed")
	}
	if a.Data[1*3+2] != 5 {
		t.Fatal("row-major offset wrong")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Fatal("Clone shares data")
	}
}

func TestRowView(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	r := a.Row(1)
	if r[0] != 4 || r[2] != 6 {
		t.Fatalf("Row(1) = %v", r)
	}
	r[0] = 99
	if a.At(1, 0) != 99 {
		t.Fatal("Row must be a view")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 4)
	b := FromSlice([]float32{4, 3, 2, 1}, 4)
	if got := Add(a, b); got.Data[0] != 5 || got.Data[3] != 5 {
		t.Fatalf("Add = %v", got.Data)
	}
	if got := Sub(a, b); got.Data[0] != -3 || got.Data[3] != 3 {
		t.Fatalf("Sub = %v", got.Data)
	}
	if got := Mul(a, b); got.Data[1] != 6 {
		t.Fatalf("Mul = %v", got.Data)
	}
	if got := Div(a, b); got.Data[3] != 4 {
		t.Fatalf("Div = %v", got.Data)
	}
	if got := Scale(a, 2); got.Data[2] != 6 {
		t.Fatalf("Scale = %v", got.Data)
	}
	if got := Neg(a); got.Data[0] != -1 {
		t.Fatalf("Neg = %v", got.Data)
	}
	if got := AddScalar(a, 10); got.Data[0] != 11 {
		t.Fatalf("AddScalar = %v", got.Data)
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{10, 20}, 2)
	AddInPlace(a, b)
	if a.Data[1] != 22 {
		t.Fatalf("AddInPlace = %v", a.Data)
	}
	ScaleInPlace(a, 0.5)
	if a.Data[0] != 5.5 {
		t.Fatalf("ScaleInPlace = %v", a.Data)
	}
	AXPY(2, b, a)
	if a.Data[0] != 25.5 {
		t.Fatalf("AXPY = %v", a.Data)
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{1, -2, 3, 0}, 4)
	if Sum(a) != 2 {
		t.Fatalf("Sum = %v", Sum(a))
	}
	if Mean(a) != 0.5 {
		t.Fatalf("Mean = %v", Mean(a))
	}
	if Max(a) != 3 || Min(a) != -2 {
		t.Fatalf("Max/Min = %v/%v", Max(a), Min(a))
	}
	if ArgMax(a) != 2 {
		t.Fatalf("ArgMax = %d", ArgMax(a))
	}
	if Dot(a, a) != 14 {
		t.Fatalf("Dot = %v", Dot(a, a))
	}
	if math.Abs(float64(Norm2(a))-math.Sqrt(14)) > 1e-6 {
		t.Fatalf("Norm2 = %v", Norm2(a))
	}
}

func TestArgMaxRows(t *testing.T) {
	a := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	got := ArgMaxRows(a)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRows = %v", got)
	}
}

func TestClip(t *testing.T) {
	a := FromSlice([]float32{-5, 0, 5}, 3)
	c := Clip(a, -1, 1)
	if c.Data[0] != -1 || c.Data[1] != 0 || c.Data[2] != 1 {
		t.Fatalf("Clip = %v", c.Data)
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Shape[0] != 3 || at.Shape[1] != 2 {
		t.Fatalf("Transpose shape %v", at.Shape)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("Transpose values wrong: %v", at.Data)
	}
}

func TestTransposeLargeRoundTrip(t *testing.T) {
	r := NewRNG(1)
	a := Randn(r, 1, 67, 129)
	b := Transpose(Transpose(a))
	if !a.AllClose(b, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestSumRowsSumCols(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	sr := SumRows(a)
	if sr.Data[0] != 5 || sr.Data[1] != 7 || sr.Data[2] != 9 {
		t.Fatalf("SumRows = %v", sr.Data)
	}
	sc := SumCols(a)
	if sc.Data[0] != 6 || sc.Data[1] != 15 {
		t.Fatalf("SumCols = %v", sc.Data)
	}
}

func TestAddMulRowVector(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float32{10, 20}, 2)
	AddRowVector(a, v)
	if a.At(0, 0) != 11 || a.At(1, 1) != 24 {
		t.Fatalf("AddRowVector = %v", a.Data)
	}
	MulRowVector(a, v)
	if a.At(0, 1) != 440 {
		t.Fatalf("MulRowVector = %v", a.Data)
	}
}

func matmulNaive(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float64
			for p := 0; p < k; p++ {
				sum += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			out.Set(float32(sum), i, j)
		}
	}
	return out
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := NewRNG(42)
	for _, dims := range [][3]int{{1, 1, 1}, {5, 7, 3}, {33, 65, 17}, {64, 64, 64}} {
		a := Randn(r, 1, dims[0], dims[1])
		b := Randn(r, 1, dims[1], dims[2])
		got := MatMul(a, b)
		want := matmulNaive(a, b)
		if !got.AllClose(want, 1e-3) {
			t.Fatalf("MatMul mismatch at dims %v", dims)
		}
	}
}

func TestMatMulIntoReusesStorage(t *testing.T) {
	r := NewRNG(7)
	a := Randn(r, 1, 8, 8)
	b := Randn(r, 1, 8, 8)
	out := Full(99, 8, 8)
	MatMulInto(out, a, b)
	want := MatMul(a, b)
	if !out.AllClose(want, 1e-5) {
		t.Fatal("MatMulInto differs from MatMul")
	}
}

func TestMatMulTransB(t *testing.T) {
	r := NewRNG(3)
	a := Randn(r, 1, 9, 5)
	b := Randn(r, 1, 7, 5)
	got := MatMulTransB(a, b)
	want := MatMul(a, Transpose(b))
	if !got.AllClose(want, 1e-4) {
		t.Fatal("MatMulTransB mismatch")
	}
}

func TestMatMulTransA(t *testing.T) {
	r := NewRNG(4)
	a := Randn(r, 1, 6, 9)
	b := Randn(r, 1, 6, 4)
	got := MatMulTransA(a, b)
	want := MatMul(Transpose(a), b)
	if !got.AllClose(want, 1e-4) {
		t.Fatal("MatMulTransA mismatch")
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	x := FromSlice([]float32{1, 1}, 2)
	got := MatVec(a, x)
	if got.Data[0] != 3 || got.Data[1] != 7 {
		t.Fatalf("MatVec = %v", got.Data)
	}
}

func TestBatchMatMul(t *testing.T) {
	r := NewRNG(5)
	a := Randn(r, 1, 3, 4, 5)
	b := Randn(r, 1, 3, 5, 6)
	got := BatchMatMul(a, b)
	for bi := 0; bi < 3; bi++ {
		as := FromSlice(a.Data[bi*20:(bi+1)*20], 4, 5)
		bs := FromSlice(b.Data[bi*30:(bi+1)*30], 5, 6)
		want := MatMul(as, bs)
		gs := FromSlice(got.Data[bi*24:(bi+1)*24], 4, 6)
		if !gs.AllClose(want, 1e-4) {
			t.Fatalf("BatchMatMul batch %d mismatch", bi)
		}
	}
}

func TestBatchMatMulTransB(t *testing.T) {
	r := NewRNG(6)
	a := Randn(r, 1, 2, 4, 5)
	b := Randn(r, 1, 2, 3, 5)
	got := BatchMatMulTransB(a, b)
	for bi := 0; bi < 2; bi++ {
		as := FromSlice(a.Data[bi*20:(bi+1)*20], 4, 5)
		bs := FromSlice(b.Data[bi*15:(bi+1)*15], 3, 5)
		want := MatMulTransB(as, bs)
		gs := FromSlice(got.Data[bi*12:(bi+1)*12], 4, 3)
		if !gs.AllClose(want, 1e-4) {
			t.Fatalf("BatchMatMulTransB batch %d mismatch", bi)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dim mismatch")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	s := SoftmaxRows(a)
	for i := 0; i < 2; i++ {
		var sum float32
		for j := 0; j < 3; j++ {
			sum += s.At(i, j)
		}
		if math.Abs(float64(sum)-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	// Large-value row must be stable (no NaN) and uniform.
	if math.Abs(float64(s.At(1, 0))-1.0/3) > 1e-5 {
		t.Fatalf("softmax of constant row = %v", s.Row(1))
	}
	if s.At(0, 2) <= s.At(0, 1) {
		t.Fatal("softmax not monotone")
	}
}

func TestLogSoftmaxMatchesSoftmax(t *testing.T) {
	r := NewRNG(8)
	a := Randn(r, 2, 5, 11)
	ls := LogSoftmaxRows(a)
	s := SoftmaxRows(a)
	for i := range s.Data {
		if math.Abs(math.Exp(float64(ls.Data[i]))-float64(s.Data[i])) > 1e-5 {
			t.Fatal("exp(logsoftmax) != softmax")
		}
	}
}

func TestLayerNormRows(t *testing.T) {
	r := NewRNG(9)
	a := Randn(r, 3, 4, 64)
	gamma := Ones(64)
	beta := Zeros(64)
	out := LayerNormRows(a, gamma, beta, 1e-5)
	for i := 0; i < 4; i++ {
		row := out.Row(i)
		var mean, varsum float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= 64
		for _, v := range row {
			d := float64(v) - mean
			varsum += d * d
		}
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("row %d mean = %v", i, mean)
		}
		if math.Abs(varsum/64-1) > 1e-2 {
			t.Fatalf("row %d var = %v", i, varsum/64)
		}
	}
}

func TestLayerNormGammaBeta(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 1, 4)
	gamma := Full(2, 4)
	beta := Full(1, 4)
	out := LayerNormRows(a, gamma, beta, 1e-5)
	// gamma scales, beta shifts: mean of out must be beta (1).
	if math.Abs(float64(Mean(out))-1) > 1e-4 {
		t.Fatalf("mean = %v, want 1", Mean(out))
	}
}

func TestActivations(t *testing.T) {
	a := FromSlice([]float32{-2, 0, 2}, 3)
	relu := ReLU(a)
	if relu.Data[0] != 0 || relu.Data[2] != 2 {
		t.Fatalf("ReLU = %v", relu.Data)
	}
	g := GELU(a)
	if g.Data[1] != 0 {
		t.Fatalf("GELU(0) = %v", g.Data[1])
	}
	if g.Data[2] < 1.9 || g.Data[2] > 2 {
		t.Fatalf("GELU(2) = %v", g.Data[2])
	}
	if g.Data[0] > 0 || g.Data[0] < -0.1 {
		t.Fatalf("GELU(-2) = %v", g.Data[0])
	}
	sg := Sigmoid(Zeros(1))
	if sg.Data[0] != 0.5 {
		t.Fatalf("Sigmoid(0) = %v", sg.Data[0])
	}
	th := Tanh(Zeros(1))
	if th.Data[0] != 0 {
		t.Fatalf("Tanh(0) = %v", th.Data[0])
	}
}

func TestGELUGradNumerically(t *testing.T) {
	xs := FromSlice([]float32{-3, -1, -0.1, 0, 0.1, 1, 3}, 7)
	grad := GELUGrad(xs)
	const h = 1e-3
	for i, x := range xs.Data {
		fp := geluScalar(x + h)
		fm := geluScalar(x - h)
		num := (fp - fm) / (2 * h)
		if math.Abs(float64(num-grad.Data[i])) > 1e-2 {
			t.Fatalf("GELUGrad(%v) = %v, numeric %v", x, grad.Data[i], num)
		}
	}
}

func TestHasNaN(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	if a.HasNaN() {
		t.Fatal("false positive")
	}
	a.Data[1] = float32(math.NaN())
	if !a.HasNaN() {
		t.Fatal("missed NaN")
	}
	a.Data[1] = float32(math.Inf(1))
	if !a.HasNaN() {
		t.Fatal("missed Inf")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(124)
	if NewRNG(123).Uint64() == c.Uint64() {
		t.Fatal("different seeds collided on first draw")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(99)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split streams identical")
	}
}

func TestRandnMoments(t *testing.T) {
	r := NewRNG(11)
	a := Randn(r, 2, 10000)
	m := float64(Mean(a))
	if math.Abs(m) > 0.1 {
		t.Fatalf("mean = %v", m)
	}
	var varsum float64
	for _, v := range a.Data {
		varsum += float64(v-float32(m)) * float64(v-float32(m))
	}
	varsum /= float64(a.Len())
	if math.Abs(varsum-4) > 0.3 {
		t.Fatalf("var = %v, want ~4", varsum)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(12)
	a := Uniform(r, -2, 3, 1000)
	if Min(a) < -2 || Max(a) >= 3 {
		t.Fatalf("Uniform out of range: [%v, %v]", Min(a), Max(a))
	}
}

func TestXavierKaimingRanges(t *testing.T) {
	r := NewRNG(13)
	x := XavierInit(r, 100, 100, 100, 100)
	limit := float32(math.Sqrt(6.0 / 200))
	if Max(x) > limit || Min(x) < -limit {
		t.Fatal("Xavier init out of range")
	}
	k := KaimingInit(r, 128, 128, 128)
	std := math.Sqrt(float64(Dot(k, k)) / float64(k.Len()))
	want := math.Sqrt(2.0 / 128)
	if math.Abs(std-want)/want > 0.1 {
		t.Fatalf("Kaiming std = %v, want ~%v", std, want)
	}
}

func TestParallelCoversRange(t *testing.T) {
	n := 10000
	hit := make([]bool, n)
	Parallel(n, func(s, e int) {
		for i := s; i < e; i++ {
			if hit[i] {
				t.Error("index visited twice")
			}
			hit[i] = true
		}
	})
	for i, h := range hit {
		if !h {
			t.Fatalf("index %d not visited", i)
		}
	}
}

func TestParallelRowsCoversRange(t *testing.T) {
	n := 37
	var total int64
	counts := make([]int32, n)
	ParallelRows(n, func(s, e int) {
		for i := s; i < e; i++ {
			counts[i]++
		}
	})
	for _, c := range counts {
		total += int64(c)
		if c != 1 {
			t.Fatalf("row visited %d times", c)
		}
	}
	if total != int64(n) {
		t.Fatalf("total = %d", total)
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	if Workers() != 1 {
		t.Fatalf("Workers = %d", Workers())
	}
	// Serial execution must still be correct.
	r := NewRNG(21)
	a := Randn(r, 1, 16, 16)
	b := Randn(r, 1, 16, 16)
	got := MatMul(a, b)
	SetMaxWorkers(8)
	want := MatMul(a, b)
	if !got.AllClose(want, 1e-6) {
		t.Fatal("worker count changed result")
	}
}

// Property: (a+b)-b == a within float tolerance.
func TestPropAddSubInverse(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || v > 1e15 || v < -1e15 {
				vals[i] = 1
			}
		}
		a := FromSlice(vals, len(vals))
		b := Full(3.5, len(vals))
		back := Sub(Add(a, b), b)
		for i := range back.Data {
			diff := math.Abs(float64(back.Data[i] - a.Data[i]))
			scale := math.Max(1, math.Abs(float64(a.Data[i])))
			if diff/scale > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: softmax output is a probability distribution for any
// finite input row.
func TestPropSoftmaxDistribution(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		for i, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				vals[i] = 0
			}
		}
		a := FromSlice(vals, 1, len(vals))
		s := SoftmaxRows(a)
		var sum float64
		for _, v := range s.Data {
			if v < 0 || v > 1 || math.IsNaN(float64(v)) {
				return false
			}
			sum += float64(v)
		}
		return math.Abs(sum-1) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: (a+b)@c == a@c + b@c.
func TestPropMatMulDistributive(t *testing.T) {
	r := NewRNG(31)
	for trial := 0; trial < 20; trial++ {
		m := 1 + r.Intn(16)
		k := 1 + r.Intn(16)
		n := 1 + r.Intn(16)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, m, k)
		c := Randn(r, 1, k, n)
		left := MatMul(Add(a, b), c)
		right := Add(MatMul(a, c), MatMul(b, c))
		if !left.AllClose(right, 1e-3) {
			t.Fatalf("distributivity failed at m=%d k=%d n=%d", m, k, n)
		}
	}
}

func BenchmarkMatMul256(b *testing.B) {
	r := NewRNG(1)
	x := Randn(r, 1, 256, 256)
	y := Randn(r, 1, 256, 256)
	b.SetBytes(int64(256 * 256 * 256 * 2 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkSoftmax(b *testing.B) {
	r := NewRNG(2)
	x := Randn(r, 1, 512, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxRows(x)
	}
}

func TestMatMulTiledMatchesNaive(t *testing.T) {
	r := NewRNG(100)
	for _, dims := range [][3]int{
		{1, 1, 1}, {3, 5, 2}, {4, 4, 4}, {63, 65, 67},
		{64, 128, 64}, {100, 70, 130}, {129, 1, 5},
	} {
		a := Randn(r, 1, dims[0], dims[1])
		b := Randn(r, 1, dims[1], dims[2])
		got := MatMulTiled(a, b)
		want := matmulNaive(a, b)
		if !got.AllClose(want, 1e-2) {
			t.Fatalf("MatMulTiled mismatch at dims %v", dims)
		}
	}
}

func TestMatMulTiledMatchesMatMul(t *testing.T) {
	r := NewRNG(101)
	a := Randn(r, 1, 200, 150)
	b := Randn(r, 1, 150, 180)
	x := MatMul(a, b)
	y := MatMulTiled(a, b)
	if !x.AllClose(y, 1e-2) {
		t.Fatal("tiled and streaming kernels disagree")
	}
}

func BenchmarkMatMulStreaming512(b *testing.B) {
	r := NewRNG(1)
	x := Randn(r, 1, 512, 512)
	y := Randn(r, 1, 512, 512)
	b.SetBytes(int64(512 * 512 * 512 * 2 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulTiled512(b *testing.B) {
	r := NewRNG(1)
	x := Randn(r, 1, 512, 512)
	y := Randn(r, 1, 512, 512)
	b.SetBytes(int64(512 * 512 * 512 * 2 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTiled(x, y)
	}
}

// Property: AXPY is linear: AXPY(a+b, x, y) == AXPY(a,x,·) then
// AXPY(b,x,·).
func TestPropAXPYLinear(t *testing.T) {
	f := func(a, b float32, seed uint64) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) ||
			math.Abs(float64(a)) > 100 || math.Abs(float64(b)) > 100 {
			return true
		}
		r := NewRNG(seed)
		x := Randn(r, 1, 16)
		y1 := Randn(r, 1, 16)
		y2 := y1.Clone()
		AXPY(a+b, x, y1)
		AXPY(a, x, y2)
		AXPY(b, x, y2)
		return y1.AllClose(y2, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ == BᵀAᵀ.
func TestPropMatMulTransposeIdentity(t *testing.T) {
	r := NewRNG(200)
	for trial := 0; trial < 15; trial++ {
		m := 1 + r.Intn(12)
		k := 1 + r.Intn(12)
		n := 1 + r.Intn(12)
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		left := Transpose(MatMul(a, b))
		right := MatMul(Transpose(b), Transpose(a))
		if !left.AllClose(right, 1e-3) {
			t.Fatalf("(AB)^T != B^T A^T at %dx%dx%d", m, k, n)
		}
	}
}

// Property: LayerNorm output is invariant to input shift and scale
// (for gamma=1, beta=0): LN(a*x + c) == LN(x).
func TestPropLayerNormInvariance(t *testing.T) {
	r := NewRNG(201)
	gamma := Ones(32)
	beta := Zeros(32)
	for trial := 0; trial < 10; trial++ {
		x := Randn(r, 1, 4, 32)
		scale := 0.5 + r.Float32()*5
		shift := r.Float32()*10 - 5
		y := AddScalar(Scale(x, scale), shift)
		a := LayerNormRows(x, gamma, beta, 1e-6)
		b := LayerNormRows(y, gamma, beta, 1e-6)
		if !a.AllClose(b, 1e-2) {
			t.Fatalf("LayerNorm not shift/scale invariant (scale %v shift %v)", scale, shift)
		}
	}
}

// Property: softmax is shift-invariant: softmax(x + c) == softmax(x).
func TestPropSoftmaxShiftInvariant(t *testing.T) {
	r := NewRNG(202)
	for trial := 0; trial < 20; trial++ {
		x := Randn(r, 2, 3, 9)
		c := r.Float32()*20 - 10
		a := SoftmaxRows(x)
		b := SoftmaxRows(AddScalar(x, c))
		if !a.AllClose(b, 1e-4) {
			t.Fatalf("softmax not shift invariant at c=%v", c)
		}
	}
}
