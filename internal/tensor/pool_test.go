package tensor

import (
	"sync"
	"testing"
)

func TestPoolGetZeroFilledAndShaped(t *testing.T) {
	a := Get(3, 5)
	if a.Rank() != 2 || a.Dim(0) != 3 || a.Dim(1) != 5 || a.Len() != 15 {
		t.Fatalf("Get(3,5) shape %v len %d", a.Shape, a.Len())
	}
	for i, v := range a.Data {
		if v != 0 {
			t.Fatalf("Get not zero-filled at %d: %v", i, v)
		}
	}
	a.Fill(7)
	Release(a)

	// The recycled buffer must come back zeroed.
	b := Get(3, 5)
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("recycled Get not zero-filled at %d: %v", i, v)
		}
	}
	Release(b)
}

func TestPoolReleaseInvalidatesTensor(t *testing.T) {
	a := Get(4, 4)
	Release(a)
	// A released tensor must not expose the (possibly recycled)
	// buffer: stale uses should fail loudly, not read someone else's
	// data.
	if a.Data != nil {
		t.Fatalf("released tensor still has Data (len %d)", len(a.Data))
	}
	if len(a.Shape) != 0 {
		t.Fatalf("released tensor still has Shape %v", a.Shape)
	}
}

func TestPoolDoubleReleasePanics(t *testing.T) {
	a := Get(8)
	Release(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	Release(a)
}

func TestPoolNoAliasingWithLiveTensor(t *testing.T) {
	// A released buffer must never be reachable through a tensor the
	// caller still holds.
	live := Get(16, 16)
	live.Fill(42)
	scratch := Get(16, 16)
	Release(scratch)
	// The next same-class Get may reuse scratch's buffer; writing to
	// it must not disturb live.
	reused := Get(16, 16)
	if &reused.Data[0] == &live.Data[0] {
		t.Fatal("pool handed out a buffer still owned by a live tensor")
	}
	reused.Fill(-1)
	for i, v := range live.Data {
		if v != 42 {
			t.Fatalf("live tensor corrupted at %d: %v", i, v)
		}
	}
	Release(reused)
	Release(live)
}

func TestPoolReshapeViewSharesStorage(t *testing.T) {
	a := Get(4, 8)
	v := a.Reshape(8, 4)
	if v.pooled != nil {
		t.Fatal("view carries pool ownership; only the parent may be released")
	}
	v.Data[0] = 9
	if a.Data[0] != 9 {
		t.Fatal("reshape view does not share storage")
	}
	// Releasing the owner retires the view's storage with it; the view
	// must be dead to the caller by now.
	Release(a)
}

func TestPoolOutOfClassFallsBack(t *testing.T) {
	// Scalar requests round up to the smallest class; zero-sized
	// requests fall outside the classes but must still work.
	z := Get()
	if z.Len() != 1 {
		t.Fatalf("scalar Get len %d", z.Len())
	}
	Release(z)
	e := Get(0, 5)
	if e.Len() != 0 {
		t.Fatalf("empty Get len %d", e.Len())
	}
	Release(e)
}

func TestArenaDrainRecycles(t *testing.T) {
	a := NewArena()
	t1 := a.Get(32, 32)
	t2 := a.Get(64)
	if a.Len() != 2 {
		t.Fatalf("arena Len %d, want 2", a.Len())
	}
	t1.Fill(1)
	t2.Fill(2)
	a.Drain()
	if a.Len() != 0 {
		t.Fatalf("arena Len %d after Drain", a.Len())
	}
	if t1.Data != nil || t2.Data != nil {
		t.Fatal("Drain did not invalidate arena tensors")
	}
}

func TestScratchUsesAmbientArena(t *testing.T) {
	a := NewArena()
	prev := SetStepArena(a)
	defer SetStepArena(prev)
	s := Scratch(10, 10)
	if a.Len() != 1 {
		t.Fatalf("Scratch did not record into ambient arena (Len %d)", a.Len())
	}
	SetStepArena(prev)
	plain := Scratch(10, 10)
	if a.Len() != 1 {
		t.Fatal("Scratch recorded into arena after removal")
	}
	_ = plain
	s.Fill(1)
	a.Drain()
}

func TestPoolOpsProduceCorrectValues(t *testing.T) {
	// End-to-end: run ops through an installed arena across several
	// "steps" and check results match arena-less execution despite
	// buffer recycling.
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := FromSlice([]float32{6, 5, 4, 3, 2, 1}, 3, 2)
	want := MatMul(x, y)

	a := NewArena()
	prev := SetStepArena(a)
	defer SetStepArena(prev)
	for step := 0; step < 4; step++ {
		got := MatMul(x, y)
		if !got.AllClose(want, 1e-6) {
			t.Fatalf("step %d: pooled MatMul %v, want %v", step, got.Data, want.Data)
		}
		sum := Add(got, got)
		if sum.At(0, 0) != 2*want.At(0, 0) {
			t.Fatalf("step %d: pooled Add wrong", step)
		}
		a.Drain()
	}
}

func TestPoolConcurrentGetRelease(t *testing.T) {
	// Exercised with -race by verify.sh: concurrent Get/Release on
	// overlapping size classes must not hand the same buffer to two
	// goroutines.
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := 1 + (seed+i)%100
				tt := Get(n, 7)
				for j := range tt.Data {
					tt.Data[j] = float32(seed)
				}
				for j := range tt.Data {
					if tt.Data[j] != float32(seed) {
						t.Errorf("buffer shared across goroutines")
						return
					}
				}
				Release(tt)
			}
		}(w)
	}
	wg.Wait()
}

func TestArenaConcurrentGet(t *testing.T) {
	// Parallel kernels allocate from worker goroutines; Arena.Get must
	// be safe under concurrency (Drain runs after the join).
	a := NewArena()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a.Get(16)
			}
		}()
	}
	wg.Wait()
	if a.Len() != 8*200 {
		t.Fatalf("arena Len %d, want %d", a.Len(), 8*200)
	}
	a.Drain()
}

func TestPoolStatsAdvance(t *testing.T) {
	g0, m0, r0 := PoolStats()
	x := Get(128)
	Release(x)
	y := Get(128)
	Release(y)
	g1, m1, r1 := PoolStats()
	// Every in-class Get is either a hit or a miss (a GC can empty a
	// sync.Pool, so hits alone are not guaranteed).
	if g1+m1 < g0+m0+2 {
		t.Fatalf("pool gets did not advance: %d+%d -> %d+%d", g0, m0, g1, m1)
	}
	if r1 < r0+2 {
		t.Fatalf("pool releases did not advance: %d -> %d", r0, r1)
	}
}
