// Package tensor implements dense, row-major float32 tensors with
// goroutine-parallel kernels. It is the compute substrate of the
// BaGuaLu reproduction: all model math (GEMM, softmax, layernorm,
// reductions) is built on it, standing in for the SWDNN/CPE kernels
// used on the real SW26010-Pro hardware.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float32 tensor. The zero value is not
// usable; construct tensors with New, Zeros, FromSlice, etc.
//
// Tensors are always contiguous: Strides is derived from Shape and
// reshapes never copy. This keeps the kernel code simple and mirrors
// the layout restrictions of the CPE DMA engines the paper targets.
type Tensor struct {
	Data  []float32
	Shape []int

	// pooled points at the full size-class buffer backing Data when
	// the tensor came from the buffer pool (see pool.go); nil for
	// plain New allocations and views.
	pooled *[]float32
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := numel(shape)
	return &Tensor{Data: make([]float32, n), Shape: append([]int(nil), shape...)}
}

// Zeros is an alias for New, provided for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Ones returns a tensor filled with 1.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Full returns a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is
// used directly (not copied); len(data) must equal the shape's element
// count.
func FromSlice(data []float32, shape ...int) *Tensor {
	if len(data) != numel(shape) {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Data: data, Shape: append([]int(nil), shape...)}
}

func numel(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Reshape returns a view of t with a new shape. One dimension may be
// -1, in which case it is inferred. The data is shared, not copied.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.Data)%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.Shape, shape))
		}
		shape[infer] = len(t.Data) / known
		known *= shape[infer]
	}
	if known != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.Shape, len(t.Data), shape, known))
	}
	return &Tensor{Data: t.Data, Shape: shape}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's data into t. Shapes must have equal element
// counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.Shape, src.Shape))
	}
	copy(t.Data, src.Data)
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index %v does not match rank of shape %v", idx, t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Row returns a view of row i of a rank-2 tensor.
func (t *Tensor) Row(i int) []float32 {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on tensor of shape %v", t.Shape))
	}
	c := t.Shape[1]
	return t.Data[i*c : (i+1)*c]
}

// RowsView returns a view of rows [lo, hi) of a rank-2 tensor. The
// data is shared, not copied; like all views it must never be passed
// to Release.
func (t *Tensor) RowsView(lo, hi int) *Tensor {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: RowsView on tensor of shape %v", t.Shape))
	}
	if lo < 0 || hi < lo || hi > t.Shape[0] {
		panic(fmt.Sprintf("tensor: RowsView [%d,%d) out of range for shape %v", lo, hi, t.Shape))
	}
	c := t.Shape[1]
	return &Tensor{Data: t.Data[lo*c : hi*c : hi*c], Shape: []int{hi - lo, c}}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	clear(t.Data)
}

// AllClose reports whether all elements of t and o differ by at most
// tol. Shapes must match.
func (t *Tensor) AllClose(o *Tensor, tol float32) bool {
	if !t.SameShape(o) {
		return false
	}
	for i := range t.Data {
		d := t.Data[i] - o.Data[i]
		if d < -tol || d > tol {
			return false
		}
		if math.IsNaN(float64(t.Data[i])) != math.IsNaN(float64(o.Data[i])) {
			return false
		}
	}
	return true
}

// HasNaN reports whether any element is NaN or Inf. It is used by the
// mixed-precision trainer to detect overflow and back off the loss
// scale.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if len(t.Data) <= 16 {
		var b strings.Builder
		fmt.Fprintf(&b, "Tensor%v%v", t.Shape, t.Data)
		return b.String()
	}
	return fmt.Sprintf("Tensor%v[%d elements]", t.Shape, len(t.Data))
}
