package tensor

import "math"

// RNG is a small, allocation-free SplitMix64-based generator. The
// reproduction cannot use math/rand's global state because thousands
// of simulated ranks need independent, seedable, reproducible
// streams.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float32 returns a uniform value in [0,1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal sample (Box–Muller).
func (r *RNG) Norm() float32 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return float32(math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2))
}

// Split derives an independent child generator; used to give each
// simulated rank or layer its own stream from one master seed.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// State returns the generator's current position. SplitMix64 state is
// a single word, so checkpointing the data-order stream is exact:
// restoring it with SetState resumes the identical draw sequence.
func (r *RNG) State() uint64 { return r.state }

// SetState rewinds or advances the generator to a captured position.
func (r *RNG) SetState(s uint64) { r.state = s }

// Randn returns a tensor of i.i.d. N(0, std²) samples.
func Randn(r *RNG, std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = r.Norm() * std
	}
	return t
}

// Uniform returns a tensor of i.i.d. U[lo,hi) samples.
func Uniform(r *RNG, lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*r.Float32()
	}
	return t
}

// XavierInit fills a weight tensor of shape [out,in] (or [in,out])
// with Glorot-uniform samples based on fanIn+fanOut.
func XavierInit(r *RNG, fanIn, fanOut int, shape ...int) *Tensor {
	limit := float32(math.Sqrt(6 / float64(fanIn+fanOut)))
	return Uniform(r, -limit, limit, shape...)
}

// KaimingInit fills a weight tensor with N(0, 2/fanIn) samples, the
// initialization used for ReLU/GELU expert FFNs.
func KaimingInit(r *RNG, fanIn int, shape ...int) *Tensor {
	std := float32(math.Sqrt(2 / float64(fanIn)))
	return Randn(r, std, shape...)
}
