package tensor

import (
	"fmt"
	"sync"
)

// Grouped GEMM: one batched call multiplying contiguous row blocks of
// a single activation matrix against per-block weight matrices. This
// is the expert-FFN kernel of the dropless MoE layer — every expert's
// token block on a rank becomes one group, so the tiled-vs-naive
// dispatch is decided on the *group's* total multiply-adds. A skewed
// batch (one hot expert, many cold one-token experts) therefore runs
// entirely through the tiled kernel instead of degrading to the naive
// loop once per cold expert.
//
// Blocking is identical to matmul_tiled.go with one change: row
// macro-tiles never span a group boundary, so each group's output is
// bitwise identical to running the standalone tiled kernel on that
// block alone. Within a worker the packed B panel is reused across
// every row tile of the same group and lazily repacked only when the
// worker crosses into the next group's tiles — the per-(j,p) panel
// packing is shared across experts rather than paid once per expert
// per call.
//
// All groups share the inner (k) and output (n) dimensions; only the
// row counts differ. off has len(bs)+1 entries with off[g]..off[g+1]
// delimiting group g's rows; empty groups are allowed.

// gUnit is one group-aligned row macro-tile: rows [i0,i1) of the flat
// activation matrix, all belonging to group g.
type gUnit struct{ g, i0, i1 int }

// unitPool recycles the per-call unit slices so steady-state grouped
// calls allocate nothing.
var unitPool = sync.Pool{New: func() any { return new([]gUnit) }}

// groupedDims validates a grouped call and returns the total rows.
func groupedDims(op string, a *Tensor, off []int, groups int) int {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("tensor: %s activation must be rank-2, got %v", op, a.Shape))
	}
	if len(off) != groups+1 {
		panic(fmt.Sprintf("tensor: %s offsets len %d, want %d groups+1", op, len(off), groups+1))
	}
	if off[0] != 0 || off[groups] != a.Shape[0] {
		panic(fmt.Sprintf("tensor: %s offsets [%d..%d] do not span %d rows", op, off[0], off[groups], a.Shape[0]))
	}
	for g := 0; g < groups; g++ {
		if off[g+1] < off[g] {
			panic(fmt.Sprintf("tensor: %s offsets not monotone at group %d", op, g))
		}
	}
	return a.Shape[0]
}

// groupUnits splits each group's rows into tileM-row units, appended
// in group order so a worker's contiguous unit range touches each
// group at most once per (j,p) panel.
func groupUnits(off []int, groups int) *[]gUnit {
	up := unitPool.Get().(*[]gUnit)
	units := (*up)[:0]
	for g := 0; g < groups; g++ {
		for i0 := off[g]; i0 < off[g+1]; i0 += tileM {
			units = append(units, gUnit{g, i0, min(i0 + tileM, off[g+1])})
		}
	}
	*up = units
	return up
}

// GroupedUsesTiled reports whether a grouped GEMM over totalRows rows
// dispatches to the tiled kernel. The decision is made on the group
// total, not per block — the point of grouping.
func GroupedUsesTiled(totalRows, k, n int) bool {
	return useTiled(totalRows, k, n)
}

// GroupedMatMulInto computes out[off[g]:off[g+1]] = a[off[g]:off[g+1]] @ bs[g]
// for every group g. a is [m,k], each bs[g] is [k,n], out is [m,n]
// (zeroed here). Group g's rows are bitwise identical to
// MatMul-dispatched-at-group-total on that block alone.
func GroupedMatMulInto(out, a *Tensor, off []int, bs []*Tensor) {
	m := groupedDims("GroupedMatMulInto", a, off, len(bs))
	k := a.Shape[1]
	n := 0
	for _, b := range bs {
		if len(b.Shape) != 2 || b.Shape[0] != k {
			panic(fmt.Sprintf("tensor: GroupedMatMulInto weight %v, want [%d,_]", b.Shape, k))
		}
		n = b.Shape[1]
	}
	if len(out.Shape) != 2 || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: GroupedMatMulInto out %v, want [%d %d]", out.Shape, m, n))
	}
	out.Zero()
	if m == 0 {
		return
	}
	if GroupedUsesTiled(m, k, n) {
		groupedTiled(out.Data, a.Data, off, bs, m, k, n, packB, n)
		return
	}
	// Naive path: per-row arithmetic identical to matmulInto, with a
	// running group pointer selecting the weight block.
	ParallelRows(m, func(s, e int) {
		g := groupOf(off, s)
		for i := s; i < e; i++ {
			for i >= off[g+1] {
				g++
			}
			b := bs[g].Data
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// GroupedMatMulTransBInto computes out[rows g] = a[rows g] @ bs[g]ᵀ
// for every group. a is [m,k], each bs[g] is [n,k] (the backward
// dx-layout), out is [m,n] (zeroed here).
func GroupedMatMulTransBInto(out, a *Tensor, off []int, bs []*Tensor) {
	m := groupedDims("GroupedMatMulTransBInto", a, off, len(bs))
	k := a.Shape[1]
	n := 0
	for _, b := range bs {
		if len(b.Shape) != 2 || b.Shape[1] != k {
			panic(fmt.Sprintf("tensor: GroupedMatMulTransBInto weight %v, want [_,%d]", b.Shape, k))
		}
		n = b.Shape[0]
	}
	if len(out.Shape) != 2 || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: GroupedMatMulTransBInto out %v, want [%d %d]", out.Shape, m, n))
	}
	out.Zero()
	if m == 0 {
		return
	}
	if GroupedUsesTiled(m, k, n) {
		groupedTiled(out.Data, a.Data, off, bs, m, k, n, packBT, k)
		return
	}
	ParallelRows(m, func(s, e int) {
		g := groupOf(off, s)
		for i := s; i < e; i++ {
			for i >= off[g+1] {
				g++
			}
			b := bs[g].Data
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b[j*k : (j+1)*k]
				var sum float32
				for p := 0; p < k; p++ {
					sum += arow[p] * brow[p]
				}
				orow[j] = sum
			}
		}
	})
}

// groupedTiled is the shared tiled driver: identical j0→p0 blocking to
// matmulTiledInto, but the inner loop walks group-aligned row units
// and lazily repacks the B panel when a worker's unit range crosses
// into the next group. pack is packB (stride n) or packBT (stride k);
// bStride is the matching last argument.
func groupedTiled(out, a []float32, off []int, bs []*Tensor, m, k, n int,
	pack func(panel, b []float32, p0, p1, j0, j1, stride int), bStride int) {
	up := groupUnits(off, len(bs))
	units := *up
	body := func(lo, hi int) {
		bp := panelPool.Get().(*[]float32)
		panel := *bp
		for j0 := 0; j0 < n; j0 += tileN {
			j1 := min(j0+tileN, n)
			for p0 := 0; p0 < k; p0 += tileK {
				p1 := min(p0+tileK, k)
				curG := -1
				for ui := lo; ui < hi; ui++ {
					u := units[ui]
					if u.g != curG {
						pack(panel, bs[u.g].Data, p0, p1, j0, j1, bStride)
						curG = u.g
					}
					macroKernel(out, a, panel, u.i0, u.i1, j0, j1, p0, p1, k, n)
				}
			}
		}
		panelPool.Put(bp)
	}
	ParallelRows(len(units), body)
	unitPool.Put(up)
}

// GroupedMatMulTransAInto accumulates outs[g] += a[rows g]ᵀ @ b[rows g]
// for every group: the grouped weight-gradient kernel. a is [m,din],
// b is [m,n], each outs[g] is [din,n] and is accumulated in place
// (callers pass the parameter-gradient tensors directly). The
// streaming p-ascending accumulation order matches MatMulTransA, so
// when outs[g] starts zeroed the result is bitwise identical to
// AddInPlace(outs[g], MatMulTransA(block_g, dblock_g)).
func GroupedMatMulTransAInto(outs []*Tensor, a, b *Tensor, off []int) {
	m := groupedDims("GroupedMatMulTransAInto", a, off, len(outs))
	if len(b.Shape) != 2 || b.Shape[0] != m {
		panic(fmt.Sprintf("tensor: GroupedMatMulTransAInto b %v, want [%d,_]", b.Shape, m))
	}
	din, n := a.Shape[1], b.Shape[1]
	for _, o := range outs {
		if len(o.Shape) != 2 || o.Shape[0] != din || o.Shape[1] != n {
			panic(fmt.Sprintf("tensor: GroupedMatMulTransAInto out %v, want [%d %d]", o.Shape, din, n))
		}
	}
	if m == 0 {
		return
	}
	// Parallelize over columns of a (rows of every outs[g]); each
	// worker owns a disjoint row range of all outputs, streaming every
	// group's activation rows once.
	ParallelRows(din, func(s, e int) {
		for g := range outs {
			o := outs[g].Data
			for p := off[g]; p < off[g+1]; p++ {
				arow := a.Data[p*din : (p+1)*din]
				brow := b.Data[p*n : (p+1)*n]
				for i := s; i < e; i++ {
					av := arow[i]
					if av == 0 {
						continue
					}
					orow := o[i*n : (i+1)*n]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	})
}

// groupOf returns the group containing flat row i (off is monotone;
// empty groups are skipped forward).
func groupOf(off []int, i int) int {
	g := 0
	for i >= off[g+1] {
		g++
	}
	return g
}
