package tensor

import (
	"fmt"
	"math"
)

// checkSame panics unless a and b have equal shapes.
func checkSame(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	checkSame("Add", a, b)
	out := Scratch(a.Shape...)
	Parallel(len(a.Data), func(s, e int) {
		for i := s; i < e; i++ {
			out.Data[i] = a.Data[i] + b.Data[i]
		}
	})
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	checkSame("Sub", a, b)
	out := Scratch(a.Shape...)
	Parallel(len(a.Data), func(s, e int) {
		for i := s; i < e; i++ {
			out.Data[i] = a.Data[i] - b.Data[i]
		}
	})
	return out
}

// Mul returns a * b elementwise (Hadamard product).
func Mul(a, b *Tensor) *Tensor {
	checkSame("Mul", a, b)
	out := Scratch(a.Shape...)
	Parallel(len(a.Data), func(s, e int) {
		for i := s; i < e; i++ {
			out.Data[i] = a.Data[i] * b.Data[i]
		}
	})
	return out
}

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor {
	checkSame("Div", a, b)
	out := Scratch(a.Shape...)
	Parallel(len(a.Data), func(s, e int) {
		for i := s; i < e; i++ {
			out.Data[i] = a.Data[i] / b.Data[i]
		}
	})
	return out
}

// AddInPlace accumulates b into a.
func AddInPlace(a, b *Tensor) {
	checkSame("AddInPlace", a, b)
	Parallel(len(a.Data), func(s, e int) {
		for i := s; i < e; i++ {
			a.Data[i] += b.Data[i]
		}
	})
}

// Scale returns a*c.
func Scale(a *Tensor, c float32) *Tensor {
	out := Scratch(a.Shape...)
	Parallel(len(a.Data), func(s, e int) {
		for i := s; i < e; i++ {
			out.Data[i] = a.Data[i] * c
		}
	})
	return out
}

// ScaleInPlace multiplies every element of a by c.
func ScaleInPlace(a *Tensor, c float32) {
	Parallel(len(a.Data), func(s, e int) {
		for i := s; i < e; i++ {
			a.Data[i] *= c
		}
	})
}

// AXPY computes y += alpha*x, the BLAS level-1 kernel used by the
// optimizers and gradient accumulation.
func AXPY(alpha float32, x, y *Tensor) {
	checkSame("AXPY", x, y)
	Parallel(len(x.Data), func(s, e int) {
		for i := s; i < e; i++ {
			y.Data[i] += alpha * x.Data[i]
		}
	})
}

// AddScalar returns a + c.
func AddScalar(a *Tensor, c float32) *Tensor {
	out := Scratch(a.Shape...)
	Parallel(len(a.Data), func(s, e int) {
		for i := s; i < e; i++ {
			out.Data[i] = a.Data[i] + c
		}
	})
	return out
}

// Neg returns -a.
func Neg(a *Tensor) *Tensor { return Scale(a, -1) }

// Sum returns the sum of all elements.
func Sum(a *Tensor) float32 {
	// Serial Kahan-style pairwise accumulation keeps results
	// deterministic across worker counts, which the distributed
	// gradient-sync tests rely on.
	var sum float64
	for _, v := range a.Data {
		sum += float64(v)
	}
	return float32(sum)
}

// Mean returns the arithmetic mean of all elements.
func Mean(a *Tensor) float32 {
	if len(a.Data) == 0 {
		return 0
	}
	return Sum(a) / float32(len(a.Data))
}

// Max returns the maximum element. It panics on empty tensors.
func Max(a *Tensor) float32 {
	if len(a.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := a.Data[0]
	for _, v := range a.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on empty tensors.
func Min(a *Tensor) float32 {
	if len(a.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := a.Data[0]
	for _, v := range a.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the maximum element.
func ArgMax(a *Tensor) int {
	if len(a.Data) == 0 {
		panic("tensor: ArgMax of empty tensor")
	}
	best, bi := a.Data[0], 0
	for i, v := range a.Data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// ArgMaxRows returns, for a rank-2 tensor, the argmax of each row.
func ArgMaxRows(a *Tensor) []int {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows on shape %v", a.Shape))
	}
	rows := a.Shape[0]
	out := make([]int, rows)
	Parallel(rows, func(s, e int) {
		for r := s; r < e; r++ {
			row := a.Row(r)
			best, bi := row[0], 0
			for i, v := range row[1:] {
				if v > best {
					best, bi = v, i+1
				}
			}
			out[r] = bi
		}
	})
	return out
}

// Dot returns the inner product of two equal-shaped tensors.
func Dot(a, b *Tensor) float32 {
	checkSame("Dot", a, b)
	var sum float64
	for i := range a.Data {
		sum += float64(a.Data[i]) * float64(b.Data[i])
	}
	return float32(sum)
}

// Norm2 returns the L2 norm of a.
func Norm2(a *Tensor) float32 {
	var sum float64
	for _, v := range a.Data {
		sum += float64(v) * float64(v)
	}
	return float32(math.Sqrt(sum))
}

// Apply returns f applied elementwise to a.
func Apply(a *Tensor, f func(float32) float32) *Tensor {
	out := Scratch(a.Shape...)
	Parallel(len(a.Data), func(s, e int) {
		for i := s; i < e; i++ {
			out.Data[i] = f(a.Data[i])
		}
	})
	return out
}

// ApplyInPlace applies f elementwise to a in place.
func ApplyInPlace(a *Tensor, f func(float32) float32) {
	Parallel(len(a.Data), func(s, e int) {
		for i := s; i < e; i++ {
			a.Data[i] = f(a.Data[i])
		}
	})
}

// Exp returns e^a elementwise.
func Exp(a *Tensor) *Tensor {
	return Apply(a, func(v float32) float32 { return float32(math.Exp(float64(v))) })
}

// Log returns ln(a) elementwise.
func Log(a *Tensor) *Tensor {
	return Apply(a, func(v float32) float32 { return float32(math.Log(float64(v))) })
}

// Sqrt returns sqrt(a) elementwise.
func Sqrt(a *Tensor) *Tensor {
	return Apply(a, func(v float32) float32 { return float32(math.Sqrt(float64(v))) })
}

// Clip returns a with every element clamped to [lo, hi].
func Clip(a *Tensor, lo, hi float32) *Tensor {
	return Apply(a, func(v float32) float32 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	})
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose on shape %v", a.Shape))
	}
	r, c := a.Shape[0], a.Shape[1]
	out := Scratch(c, r)
	// Blocked transpose for cache friendliness.
	const bs = 32
	ParallelRows((r+bs-1)/bs, func(s, e int) {
		for bi := s; bi < e; bi++ {
			i0 := bi * bs
			i1 := i0 + bs
			if i1 > r {
				i1 = r
			}
			for j0 := 0; j0 < c; j0 += bs {
				j1 := j0 + bs
				if j1 > c {
					j1 = c
				}
				for i := i0; i < i1; i++ {
					for j := j0; j < j1; j++ {
						out.Data[j*r+i] = a.Data[i*c+j]
					}
				}
			}
		}
	})
	return out
}

// SumRows returns the column-wise sum of a rank-2 tensor: out[j] =
// sum_i a[i,j], shape [cols].
func SumRows(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("tensor: SumRows on shape %v", a.Shape))
	}
	r, c := a.Shape[0], a.Shape[1]
	out := Scratch(c)
	for i := 0; i < r; i++ {
		row := a.Data[i*c : (i+1)*c]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// SumCols returns the row-wise sum of a rank-2 tensor: out[i] =
// sum_j a[i,j], shape [rows].
func SumCols(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("tensor: SumCols on shape %v", a.Shape))
	}
	r, c := a.Shape[0], a.Shape[1]
	out := Scratch(r)
	Parallel(r, func(s, e int) {
		for i := s; i < e; i++ {
			var sum float64
			for _, v := range a.Data[i*c : (i+1)*c] {
				sum += float64(v)
			}
			out.Data[i] = float32(sum)
		}
	})
	return out
}

// AddRowVector adds vector v (shape [cols]) to every row of a rank-2
// tensor in place; the broadcast pattern of bias addition.
func AddRowVector(a, v *Tensor) {
	if len(a.Shape) != 2 || len(v.Shape) != 1 || a.Shape[1] != v.Shape[0] {
		panic(fmt.Sprintf("tensor: AddRowVector shapes %v, %v", a.Shape, v.Shape))
	}
	r, c := a.Shape[0], a.Shape[1]
	Parallel(r, func(s, e int) {
		for i := s; i < e; i++ {
			row := a.Data[i*c : (i+1)*c]
			for j := range row {
				row[j] += v.Data[j]
			}
		}
	})
}

// MulRowVector multiplies every row of a rank-2 tensor by vector v in
// place.
func MulRowVector(a, v *Tensor) {
	if len(a.Shape) != 2 || len(v.Shape) != 1 || a.Shape[1] != v.Shape[0] {
		panic(fmt.Sprintf("tensor: MulRowVector shapes %v, %v", a.Shape, v.Shape))
	}
	r, c := a.Shape[0], a.Shape[1]
	Parallel(r, func(s, e int) {
		for i := s; i < e; i++ {
			row := a.Data[i*c : (i+1)*c]
			for j := range row {
				row[j] *= v.Data[j]
			}
		}
	})
}
