package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers caps kernel parallelism. It defaults to GOMAXPROCS and
// can be lowered in tests via SetMaxWorkers.
var (
	workerMu   sync.RWMutex
	maxWorkers = runtime.GOMAXPROCS(0)
)

// SetMaxWorkers bounds the number of goroutines used by parallel
// kernels. n < 1 resets to GOMAXPROCS. It returns the previous value.
func SetMaxWorkers(n int) int {
	workerMu.Lock()
	defer workerMu.Unlock()
	prev := maxWorkers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return prev
}

// Workers returns the current kernel parallelism bound.
func Workers() int {
	workerMu.RLock()
	defer workerMu.RUnlock()
	return maxWorkers
}

// minParallel is the smallest amount of work (in loop iterations) per
// goroutine that makes fan-out worthwhile; below it kernels run
// serially.
const minParallel = 2048

// Parallel splits [0,n) into contiguous chunks and runs fn on each
// chunk, using up to Workers() goroutines. fn is called with
// half-open ranges [start,end). It runs serially when n is small.
func Parallel(n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w <= 1 || n < minParallel {
		fn(0, n)
		return
	}
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}

// ParallelRows runs fn on row ranges of a matrix with rows rows,
// forcing fan-out whenever rows >= 2*Workers(), regardless of the
// per-row cost. Use for kernels whose rows are individually expensive
// (e.g. GEMM panels).
func ParallelRows(rows int, fn func(start, end int)) {
	if rows <= 0 {
		return
	}
	w := Workers()
	if w <= 1 || rows < 2 {
		fn(0, rows)
		return
	}
	if w > rows {
		w = rows
	}
	chunk := (rows + w - 1) / w
	var wg sync.WaitGroup
	for start := 0; start < rows; start += chunk {
		end := start + chunk
		if end > rows {
			end = rows
		}
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}
