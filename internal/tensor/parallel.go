package tensor

import (
	"runtime"
	"sync"
)

// Kernel parallelism runs on a pool of persistent worker goroutines
// fed by an unbuffered task channel, replacing per-call goroutine
// spawn. The rendezvous design is what makes nested parallelism safe:
// a chunk is handed to a worker only if one is parked in receive at
// that instant, otherwise the submitting goroutine runs it inline. No
// task is ever queued, so a kernel that itself calls Parallel from
// inside a worker (e.g. an MoE expert GEMM launched from a per-expert
// worker) degrades to inline execution instead of deadlocking.

// maxWorkers caps kernel parallelism. It defaults to GOMAXPROCS and
// can be lowered in tests via SetMaxWorkers.
var (
	workerMu   sync.RWMutex
	maxWorkers = runtime.GOMAXPROCS(0)
)

// SetMaxWorkers bounds the number of goroutines used by parallel
// kernels. n < 1 resets to GOMAXPROCS. It returns the previous value.
func SetMaxWorkers(n int) int {
	workerMu.Lock()
	defer workerMu.Unlock()
	prev := maxWorkers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return prev
}

// Workers returns the current kernel parallelism bound.
func Workers() int {
	workerMu.RLock()
	defer workerMu.RUnlock()
	return maxWorkers
}

// minParallel is the smallest amount of work (in loop iterations) per
// goroutine that makes fan-out worthwhile; below it kernels run
// serially.
const minParallel = 2048

// task is one chunk of a parallel kernel.
type task struct {
	fn   func(start, end int)
	s, e int
	wg   *sync.WaitGroup
}

var (
	workersOnce sync.Once
	taskCh      chan task
	wgPool      = sync.Pool{New: func() any { return new(sync.WaitGroup) }}
)

// startWorkers spins up the persistent workers, once, on first
// parallel dispatch. The pool size is GOMAXPROCS at that moment;
// SetMaxWorkers only bounds how many chunks a call fans out, so a
// lower bound simply leaves workers parked.
func startWorkers() {
	n := runtime.GOMAXPROCS(0)
	taskCh = make(chan task) // unbuffered: rendezvous handoff only
	for i := 0; i < n; i++ {
		go func() {
			for t := range taskCh {
				t.fn(t.s, t.e)
				t.wg.Done()
			}
		}()
	}
}

// dispatch splits [0,n) into up to w chunks, offers all but the first
// to parked workers, runs the first (plus any unclaimed chunk) inline,
// and waits for completion.
func dispatch(n, w int, fn func(start, end int)) {
	workersOnce.Do(startWorkers)
	chunk := (n + w - 1) / w
	wg := wgPool.Get().(*sync.WaitGroup)
	for start := chunk; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		select {
		case taskCh <- task{fn: fn, s: start, e: end, wg: wg}:
		default:
			// No worker parked: run inline, keep making progress.
			fn(start, end)
			wg.Done()
		}
	}
	fn(0, chunk)
	wg.Wait()
	wgPool.Put(wg)
}

// Parallel splits [0,n) into contiguous chunks and runs fn on each
// chunk, using up to Workers() persistent workers. fn is called with
// half-open ranges [start,end). It runs serially when n is small.
func Parallel(n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w <= 1 || n < minParallel {
		fn(0, n)
		return
	}
	if w > n {
		w = n
	}
	dispatch(n, w, fn)
}

// ParallelRows runs fn on row ranges of a matrix with rows rows,
// forcing fan-out whenever rows >= 2, regardless of the per-row cost.
// Use for kernels whose rows are individually expensive (e.g. GEMM
// panels).
func ParallelRows(rows int, fn func(start, end int)) {
	if rows <= 0 {
		return
	}
	w := Workers()
	if w <= 1 || rows < 2 {
		fn(0, rows)
		return
	}
	if w > rows {
		w = rows
	}
	dispatch(rows, w, fn)
}
