package tensor

import "sync"

// Tiled GEMM kernel modeled on the blocking scheme used for the
// SW26010-Pro CPE mesh: the output is processed in MC×NC macro-tiles
// with a KC-deep panel of B packed contiguously (the analogue of
// staging a tile in CPE local store), and a register micro-kernel
// accumulates each micro-tile. On cache hierarchies this is the same
// optimization the paper's hand-written kernels perform with DMA.

const (
	tileM  = 64  // rows per macro-tile (per-worker unit)
	tileN  = 64  // cols per macro-tile
	tileK  = 128 // reduction panel depth
	microR = 2   // micro-kernel rows: 2x4 keeps all 8 accumulators
	microC = 4   // micro-kernel cols: in amd64's 16 vector registers
)

// panelPool recycles the per-worker packed B panels so repeated GEMMs
// allocate nothing.
var panelPool = sync.Pool{New: func() any {
	s := make([]float32, tileK*tileN)
	return &s
}}

// MatMulTiled returns a@b for a [m,k] and b [k,n] using the tiled
// kernel. It is numerically equivalent to MatMul up to float
// reassociation and considerably faster for large matrices.
func MatMulTiled(a, b *Tensor) *Tensor {
	m, k, n := mmDims("MatMulTiled", a, b)
	out := Scratch(m, n)
	matmulTiledInto(out.Data, a.Data, b.Data, m, k, n, true)
	return out
}

// MatMulTransBTiled returns a@bᵀ for a [m,k] and b [n,k] using the
// tiled kernel; the backward-pass layout of MatMulTransB.
func MatMulTransBTiled(a, b *Tensor) *Tensor {
	m, k, n := mmTransBDims(a, b)
	out := Scratch(m, n)
	matmulTransBTiledInto(out.Data, a.Data, b.Data, m, k, n, true)
	return out
}

// matmulTiledInto accumulates a@b into out (pre-zeroed by the
// caller). Each worker owns a disjoint range of row macro-tiles and
// packs each (p,j) panel of B once, reusing it across all of its row
// tiles.
func matmulTiledInto(out, a, b []float32, m, k, n int, parallel bool) {
	mTiles := (m + tileM - 1) / tileM
	body := func(lo, hi int) {
		bp := panelPool.Get().(*[]float32)
		panel := *bp
		for j0 := 0; j0 < n; j0 += tileN {
			j1 := min(j0+tileN, n)
			for p0 := 0; p0 < k; p0 += tileK {
				p1 := min(p0+tileK, k)
				packB(panel, b, p0, p1, j0, j1, n)
				for ti := lo; ti < hi; ti++ {
					i0 := ti * tileM
					i1 := min(i0+tileM, m)
					macroKernel(out, a, panel, i0, i1, j0, j1, p0, p1, k, n)
				}
			}
		}
		panelPool.Put(bp)
	}
	if parallel {
		ParallelRows(mTiles, body)
	} else {
		body(0, mTiles)
	}
}

// matmulTransBTiledInto accumulates a@bᵀ into out (pre-zeroed) for
// a [m,k], b [n,k]. Identical blocking to matmulTiledInto; only the
// packing differs (B tiles are transposed into the panel).
func matmulTransBTiledInto(out, a, b []float32, m, k, n int, parallel bool) {
	mTiles := (m + tileM - 1) / tileM
	body := func(lo, hi int) {
		bp := panelPool.Get().(*[]float32)
		panel := *bp
		for j0 := 0; j0 < n; j0 += tileN {
			j1 := min(j0+tileN, n)
			for p0 := 0; p0 < k; p0 += tileK {
				p1 := min(p0+tileK, k)
				packBT(panel, b, p0, p1, j0, j1, k)
				for ti := lo; ti < hi; ti++ {
					i0 := ti * tileM
					i1 := min(i0+tileM, m)
					macroKernel(out, a, panel, i0, i1, j0, j1, p0, p1, k, n)
				}
			}
		}
		panelPool.Put(bp)
	}
	if parallel {
		ParallelRows(mTiles, body)
	} else {
		body(0, mTiles)
	}
}

// packB copies B[p0:p1, j0:j1] into a contiguous row-major panel with
// stride (j1-j0), improving locality of the inner loops.
func packB(panel, b []float32, p0, p1, j0, j1, n int) {
	w := j1 - j0
	for p := p0; p < p1; p++ {
		copy(panel[(p-p0)*w:(p-p0)*w+w], b[p*n+j0:p*n+j1])
	}
}

// packBT transposes B[j0:j1, p0:p1] (B stored [n,k]) into the same
// panel layout packB produces, so the macro kernel is shared between
// the normal and the ᵀ variants.
func packBT(panel, b []float32, p0, p1, j0, j1, k int) {
	w := j1 - j0
	kd := p1 - p0
	for jj := 0; jj < w; jj++ {
		row := b[(j0+jj)*k+p0 : (j0+jj)*k+p1]
		off := jj
		for p := 0; p < kd; p++ {
			panel[off] = row[p]
			off += w
		}
	}
}

// macroKernel updates out[i0:i1, j0:j1] += A[i0:i1, p0:p1] @ panel.
func macroKernel(out, a, panel []float32, i0, i1, j0, j1, p0, p1, k, n int) {
	w := j1 - j0
	kd := p1 - p0
	i := i0
	for ; i+microR <= i1; i += microR {
		j := 0
		for ; j+microC <= w; j += microC {
			microKernel2x4(out, a, panel, i, j0+j, j, kd, k, n, w, p0)
		}
		// Column remainder.
		for ; j < w; j++ {
			for di := 0; di < microR; di++ {
				var sum float32
				arow := a[(i+di)*k+p0:]
				for p := 0; p < kd; p++ {
					sum += arow[p] * panel[p*w+j]
				}
				out[(i+di)*n+j0+j] += sum
			}
		}
	}
	// Row remainder.
	for ; i < i1; i++ {
		arow := a[i*k+p0:]
		orow := out[i*n+j0 : i*n+j1]
		for p := 0; p < kd; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			prow := panel[p*w : (p+1)*w]
			for j, pv := range prow {
				orow[j] += av * pv
			}
		}
	}
}

// microKernel2x4 accumulates a 2x4 output block held in registers.
// The 8 accumulators plus loop temporaries fit amd64's 16 vector
// registers (a 4x4 block spills); the three-index subslices pin
// lengths so the compiler drops bounds checks from the inner loop.
func microKernel2x4(out, a, panel []float32, i, jAbs, j, kd, k, n, w, p0 int) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	a0 := a[(i+0)*k+p0 : (i+0)*k+p0+kd : (i+0)*k+p0+kd]
	a1 := a[(i+1)*k+p0 : (i+1)*k+p0+kd : (i+1)*k+p0+kd]
	off := j
	for p := 0; p < kd; p++ {
		pr := panel[off : off+4 : off+4]
		b0, b1, b2, b3 := pr[0], pr[1], pr[2], pr[3]
		av0, av1 := a0[p], a1[p]
		c00 += av0 * b0
		c01 += av0 * b1
		c02 += av0 * b2
		c03 += av0 * b3
		c10 += av1 * b0
		c11 += av1 * b1
		c12 += av1 * b2
		c13 += av1 * b3
		off += w
	}
	o0 := out[(i+0)*n+jAbs : (i+0)*n+jAbs+4 : (i+0)*n+jAbs+4]
	o1 := out[(i+1)*n+jAbs : (i+1)*n+jAbs+4 : (i+1)*n+jAbs+4]
	o0[0] += c00
	o0[1] += c01
	o0[2] += c02
	o0[3] += c03
	o1[0] += c10
	o1[1] += c11
	o1[2] += c12
	o1[3] += c13
}
