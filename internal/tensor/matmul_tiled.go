package tensor

// Tiled GEMM kernel modeled on the blocking scheme used for the
// SW26010-Pro CPE mesh: the output is processed in MC×NC macro-tiles
// with a KC-deep panel of B packed contiguously (the analogue of
// staging a tile in CPE local store), and a 4×4 register micro-kernel
// accumulates each micro-tile. On cache hierarchies this is the same
// optimization the paper's hand-written kernels perform with DMA.

const (
	tileM = 64  // rows per macro-tile (per-worker unit)
	tileN = 64  // cols per macro-tile
	tileK = 128 // reduction panel depth
	micro = 4   // register micro-kernel edge
)

// MatMulTiled returns a@b for a [m,k] and b [k,n] using the tiled
// kernel. It is numerically equivalent to MatMul up to float
// reassociation and considerably faster for large matrices.
func MatMulTiled(a, b *Tensor) *Tensor {
	m, k, n := mmDims("MatMulTiled", a, b, false)
	out := New(m, n)
	// Parallelize across row macro-tiles; each worker owns disjoint
	// output rows.
	mTiles := (m + tileM - 1) / tileM
	ParallelRows(mTiles, func(lo, hi int) {
		// Per-worker packed panel of B (KC x NC), reused across the
		// k-loop, mirroring a CPE local-store tile.
		panel := make([]float32, tileK*tileN)
		for ti := lo; ti < hi; ti++ {
			i0 := ti * tileM
			i1 := min(i0+tileM, m)
			for j0 := 0; j0 < n; j0 += tileN {
				j1 := min(j0+tileN, n)
				for p0 := 0; p0 < k; p0 += tileK {
					p1 := min(p0+tileK, k)
					packB(panel, b.Data, p0, p1, j0, j1, n)
					macroKernel(out.Data, a.Data, panel, i0, i1, j0, j1, p0, p1, k, n)
				}
			}
		}
	})
	return out
}

// packB copies B[p0:p1, j0:j1] into a contiguous row-major panel with
// stride (j1-j0), improving locality of the inner loops.
func packB(panel, b []float32, p0, p1, j0, j1, n int) {
	w := j1 - j0
	for p := p0; p < p1; p++ {
		copy(panel[(p-p0)*w:(p-p0)*w+w], b[p*n+j0:p*n+j1])
	}
}

// macroKernel updates out[i0:i1, j0:j1] += A[i0:i1, p0:p1] @ panel.
func macroKernel(out, a, panel []float32, i0, i1, j0, j1, p0, p1, k, n int) {
	w := j1 - j0
	kd := p1 - p0
	i := i0
	for ; i+micro <= i1; i += micro {
		j := 0
		for ; j+micro <= w; j += micro {
			microKernel4x4(out, a, panel, i, j0+j, j, kd, k, n, w, p0)
		}
		// Column remainder.
		for ; j < w; j++ {
			for di := 0; di < micro; di++ {
				var sum float32
				arow := a[(i+di)*k+p0:]
				for p := 0; p < kd; p++ {
					sum += arow[p] * panel[p*w+j]
				}
				out[(i+di)*n+j0+j] += sum
			}
		}
	}
	// Row remainder.
	for ; i < i1; i++ {
		arow := a[i*k+p0:]
		orow := out[i*n+j0 : i*n+j1]
		for p := 0; p < kd; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			prow := panel[p*w : (p+1)*w]
			for j, pv := range prow {
				orow[j] += av * pv
			}
		}
	}
}

// microKernel4x4 accumulates a 4x4 output block held in registers.
func microKernel4x4(out, a, panel []float32, i, jAbs, j, kd, k, n, w, p0 int) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	a0 := a[(i+0)*k+p0:]
	a1 := a[(i+1)*k+p0:]
	a2 := a[(i+2)*k+p0:]
	a3 := a[(i+3)*k+p0:]
	for p := 0; p < kd; p++ {
		b0 := panel[p*w+j]
		b1 := panel[p*w+j+1]
		b2 := panel[p*w+j+2]
		b3 := panel[p*w+j+3]
		av0, av1, av2, av3 := a0[p], a1[p], a2[p], a3[p]
		c00 += av0 * b0
		c01 += av0 * b1
		c02 += av0 * b2
		c03 += av0 * b3
		c10 += av1 * b0
		c11 += av1 * b1
		c12 += av1 * b2
		c13 += av1 * b3
		c20 += av2 * b0
		c21 += av2 * b1
		c22 += av2 * b2
		c23 += av2 * b3
		c30 += av3 * b0
		c31 += av3 * b1
		c32 += av3 * b2
		c33 += av3 * b3
	}
	out[(i+0)*n+jAbs] += c00
	out[(i+0)*n+jAbs+1] += c01
	out[(i+0)*n+jAbs+2] += c02
	out[(i+0)*n+jAbs+3] += c03
	out[(i+1)*n+jAbs] += c10
	out[(i+1)*n+jAbs+1] += c11
	out[(i+1)*n+jAbs+2] += c12
	out[(i+1)*n+jAbs+3] += c13
	out[(i+2)*n+jAbs] += c20
	out[(i+2)*n+jAbs+1] += c21
	out[(i+2)*n+jAbs+2] += c22
	out[(i+2)*n+jAbs+3] += c23
	out[(i+3)*n+jAbs] += c30
	out[(i+3)*n+jAbs+1] += c31
	out[(i+3)*n+jAbs+2] += c32
	out[(i+3)*n+jAbs+3] += c33
}
