package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Buffer pooling for the training hot path. The paper's analogue is
// node memory-capacity management on SW26010-Pro: activations and
// scratch buffers are recycled instead of re-reserved, because at
// brain scale the allocator (there: the OS; here: the Go GC) must be
// kept off the critical path.
//
// Three layers:
//
//   - Get/Release: a global, size-classed, sync.Pool-backed tensor
//     pool. Get returns a zero-filled tensor; Release recycles both
//     the data buffer and the Tensor header. A released tensor must
//     never be used again (its Data is nil-ed so stale uses fail
//     loudly, and double Release panics).
//   - Arena: a collection of pooled tensors released together. The
//     training loop drains one arena per step, which is what makes
//     every per-op Release call unnecessary.
//   - SetStepArena: installs an ambient arena that all tensor-op
//     output allocations (via Scratch) are recorded into. Install
//     from ONE training goroutine at a time; the multi-rank engine
//     deliberately leaves it nil because rank goroutines interleave
//     steps and a shared arena would recycle buffers another rank
//     still holds.
//
// Views are never pooled: Release must only be called on tensors that
// exclusively own their storage (everything Get/Arena.Get returns).

const (
	// Size classes are powers of two from 1<<minClassBits floats up
	// to 1<<maxClassBits; larger requests fall through to make.
	minClassBits = 6
	maxClassBits = 28
)

var (
	classPools [maxClassBits + 1]sync.Pool
	headerPool = sync.Pool{New: func() any { return new(Tensor) }}

	poolGets     atomic.Int64 // pooled-buffer hits
	poolMisses   atomic.Int64 // class-pool empty, fresh make
	poolReleases atomic.Int64
)

// classFor returns the smallest size class holding n floats, or -1
// when n is out of pooling range.
func classFor(n int) int {
	if n <= 0 {
		return -1
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	if c < minClassBits {
		c = minClassBits
	}
	if c > maxClassBits {
		return -1
	}
	return c
}

// Get returns a zero-filled pooled tensor with the given shape. It is
// safe for concurrent use. The caller owns the tensor until it is
// passed to Release (directly or via an Arena).
func Get(shape ...int) *Tensor {
	n := numel(shape)
	t := headerPool.Get().(*Tensor)
	t.Shape = append(t.Shape[:0], shape...)
	c := classFor(n)
	if c < 0 {
		// Out of class range (huge or empty): plain allocation, but
		// the header is still recycled.
		t.Data = make([]float32, n)
		t.pooled = nil
		return t
	}
	if v := classPools[c].Get(); v != nil {
		buf := v.(*[]float32)
		t.pooled = buf
		t.Data = (*buf)[:n]
		clear(t.Data)
		poolGets.Add(1)
		return t
	}
	s := make([]float32, 1<<c)
	t.pooled = &s
	t.Data = s[:n]
	poolMisses.Add(1)
	return t
}

// Release recycles a tensor obtained from Get (or New: exact
// power-of-two buffers are adopted into the pool, others are left to
// the GC). The tensor must not be used afterwards, and no view of it
// may be live. Releasing the same tensor twice panics.
func Release(t *Tensor) {
	if t == nil {
		return
	}
	if t.Data == nil && len(t.Shape) == 0 {
		panic("tensor: double Release")
	}
	buf := t.pooled
	if buf == nil && t.Data != nil {
		// Adopt exactly class-sized buffers from New.
		if c := cap(t.Data); c >= 1<<minClassBits && c&(c-1) == 0 {
			s := t.Data[:c]
			buf = &s
		}
	}
	if buf != nil {
		if c := classFor(cap(*buf)); c >= 0 && cap(*buf) == 1<<c {
			classPools[c].Put(buf)
			poolReleases.Add(1)
		}
	}
	t.pooled = nil
	t.Data = nil
	t.Shape = t.Shape[:0]
	headerPool.Put(t)
}

// GetSlice returns a zero-filled pooled []float32 of length n without
// a Tensor header. It is the raw-buffer analogue of Get, used by the
// mpi wire layer to stage message payloads and assemble flattened
// receive buffers. Return it with PutSlice when done.
func GetSlice(n int) []float32 {
	c := classFor(n)
	if c < 0 {
		return make([]float32, n)
	}
	if v := classPools[c].Get(); v != nil {
		s := (*v.(*[]float32))[:n]
		clear(s)
		poolGets.Add(1)
		return s
	}
	poolMisses.Add(1)
	return make([]float32, 1<<c)[:n]
}

// PutSlice recycles a slice obtained from GetSlice (or any slice whose
// capacity is exactly a pool size class). Safe for concurrent use; the
// slice must not be used afterwards.
func PutSlice(s []float32) {
	cp := cap(s)
	if c := classFor(cp); c >= 0 && cp == 1<<c {
		full := s[:cp]
		classPools[c].Put(&full)
		poolReleases.Add(1)
	}
}

// PoolStats reports cumulative pool traffic: buffer reuses, fresh
// allocations on pool miss, and releases back to the pool.
func PoolStats() (gets, misses, releases int64) {
	return poolGets.Load(), poolMisses.Load(), poolReleases.Load()
}

// Arena tracks pooled tensors so they can be released together; the
// training loop drains one arena at the end of every step. Get is safe
// for concurrent use (parallel kernels allocate from worker
// goroutines); Drain must not race with Get.
type Arena struct {
	mu sync.Mutex
	ts []*Tensor
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Get allocates from the pool and records the tensor for Drain.
func (a *Arena) Get(shape ...int) *Tensor {
	t := Get(shape...)
	a.mu.Lock()
	a.ts = append(a.ts, t)
	a.mu.Unlock()
	return t
}

// Len returns the number of tensors awaiting Drain.
func (a *Arena) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.ts)
}

// Drain releases every recorded tensor back to the pool. All of them
// (and any views over them) must be dead to the caller by now.
func (a *Arena) Drain() {
	a.mu.Lock()
	ts := a.ts
	a.ts = a.ts[:0]
	a.mu.Unlock()
	for i, t := range ts {
		Release(t)
		ts[i] = nil
	}
}

// stepArena is the ambient arena Scratch consults.
var stepArena atomic.Pointer[Arena]

// SetStepArena installs (or, with nil, removes) the ambient step
// arena and returns the previous one. Only one training goroutine may
// have an arena installed at a time; see the package comment above.
func SetStepArena(a *Arena) (prev *Arena) {
	return stepArena.Swap(a)
}

// HasStepArena reports whether an ambient step arena is installed.
// Code that releases tensors itself (e.g. the autograd tape) checks
// this to avoid double-releasing arena-owned buffers.
func HasStepArena() bool { return stepArena.Load() != nil }

// Scratch allocates a step-scoped intermediate: from the ambient
// arena when one is installed, otherwise a plain New. Every tensor-op
// output in this package is allocated through it, which is what lets
// the trainer recycle the whole forward/backward working set between
// steps without per-op Release calls.
func Scratch(shape ...int) *Tensor {
	if a := stepArena.Load(); a != nil {
		return a.Get(shape...)
	}
	return New(shape...)
}
