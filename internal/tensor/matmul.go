package tensor

import "fmt"

// Matrix-multiply kernels. These are the hot loops of the whole
// reproduction; they use register-blocked inner kernels over
// goroutine-parallel row panels, the same decomposition the paper
// applies across CPE clusters (64 compute cores per core group).
//
// Every public entry point (MatMul, MatMulInto, MatMulTransB,
// BatchMatMul) routes through a single dispatch decision: problems
// with at least gemmTiledMin multiply-adds go to the packed tiled
// kernel in matmul_tiled.go, smaller ones run the unblocked loop
// whose lower fixed overhead wins at small sizes.

// gemmTiledMin is the m*k*n product above which the tiled kernel is
// dispatched. Measured on amd64, the packed kernel already wins at
// 64x64x64 (~2^18 multiply-adds); below ~2^16 the packing cost
// outweighs the register-blocking gain and the naive kernel's zero
// setup cost wins.
const gemmTiledMin = 1 << 16

// useTiled reports whether the tiled kernel should handle an
// m-by-k-by-n GEMM.
func useTiled(m, k, n int) bool {
	return m*k*n >= gemmTiledMin
}

// MatMul returns a@b for a [m,k] and b [k,n]. Large problems are
// routed to the tiled kernel, small ones to the unblocked loop.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := mmDims("MatMul", a, b)
	out := Scratch(m, n)
	if useTiled(m, k, n) {
		matmulTiledInto(out.Data, a.Data, b.Data, m, k, n, true)
	} else {
		matmulInto(out.Data, a.Data, b.Data, m, k, n)
	}
	return out
}

// MatMulNaive returns a@b using the unblocked i-k-j kernel regardless
// of shape. It exists as the benchmark baseline the tiled kernel is
// measured against; production code should call MatMul, which
// dispatches to the best kernel for the shape.
func MatMulNaive(a, b *Tensor) *Tensor {
	m, k, n := mmDims("MatMulNaive", a, b)
	out := New(m, n)
	matmulInto(out.Data, a.Data, b.Data, m, k, n)
	return out
}

// MatMulInto computes out = a@b, reusing out's storage. out must have
// shape [m,n].
func MatMulInto(out, a, b *Tensor) {
	m, k, n := mmDims("MatMulInto", a, b)
	if len(out.Shape) != 2 || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto out shape %v, want [%d %d]", out.Shape, m, n))
	}
	out.Zero()
	if useTiled(m, k, n) {
		matmulTiledInto(out.Data, a.Data, b.Data, m, k, n, true)
	} else {
		matmulInto(out.Data, a.Data, b.Data, m, k, n)
	}
}

// MatMulTransB returns a@bᵀ for a [m,k] and b [n,k]. This is the
// layout of the backward pass w.r.t. inputs when weights are stored
// [out,in]. Dispatches like MatMul.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := mmTransBDims(a, b)
	if useTiled(m, k, n) {
		out := Scratch(m, n)
		matmulTransBTiledInto(out.Data, a.Data, b.Data, m, k, n, true)
		return out
	}
	return MatMulTransBNaive(a, b)
}

// MatMulTransBNaive is the unblocked a@bᵀ kernel, kept as the
// benchmark baseline for the tiled variant.
func MatMulTransBNaive(a, b *Tensor) *Tensor {
	m, k, n := mmTransBDims(a, b)
	out := Scratch(m, n)
	ParallelRows(m, func(s, e int) {
		for i := s; i < e; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*k : (j+1)*k]
				var sum float32
				for p := 0; p < k; p++ {
					sum += arow[p] * brow[p]
				}
				orow[j] = sum
			}
		}
	})
	return out
}

// MatMulTransA returns aᵀ@b for a [k,m] and b [k,n]; the layout of
// the backward pass w.r.t. weights.
func MatMulTransA(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMulTransA shapes %v, %v", a.Shape, b.Shape))
	}
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := Scratch(m, n)
	// Parallelize over output rows (columns of a); each worker owns a
	// disjoint slice of out so no synchronization is needed.
	ParallelRows(m, func(s, e int) {
		for p := 0; p < k; p++ {
			arow := a.Data[p*m : (p+1)*m]
			brow := b.Data[p*n : (p+1)*n]
			for i := s; i < e; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				orow := out.Data[i*n : (i+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out
}

// MatVec returns a@x for a [m,k] and x [k].
func MatVec(a, x *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(x.Shape) != 1 || a.Shape[1] != x.Shape[0] {
		panic(fmt.Sprintf("tensor: MatVec shapes %v, %v", a.Shape, x.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	out := Scratch(m)
	Parallel(m, func(s, e int) {
		for i := s; i < e; i++ {
			row := a.Data[i*k : (i+1)*k]
			var sum float32
			for p := 0; p < k; p++ {
				sum += row[p] * x.Data[p]
			}
			out.Data[i] = sum
		}
	})
	return out
}

func mmDims(op string, a, b *Tensor) (m, k, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires rank-2 tensors, got %v, %v", op, a.Shape, b.Shape))
	}
	if a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v, %v", op, a.Shape, b.Shape))
	}
	return a.Shape[0], a.Shape[1], b.Shape[1]
}

func mmTransBDims(a, b *Tensor) (m, k, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 || a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransB shapes %v, %v", a.Shape, b.Shape))
	}
	return a.Shape[0], a.Shape[1], b.Shape[0]
}

// matmulInto accumulates a@b into out (out must be zeroed by the
// caller). i-k-j loop order streams b rows through the cache; the
// row-panel parallelism gives each worker a disjoint out region.
func matmulInto(out, a, b []float32, m, k, n int) {
	ParallelRows(m, func(s, e int) {
		for i := s; i < e; i++ {
			arow := a[i*k : (i+1)*k]
			orow := out[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// BatchMatMul multiplies two rank-3 tensors batch-wise: a [B,m,k] @
// b [B,k,n] -> [B,m,n]. Used by multi-head attention. Each batch
// element dispatches independently: large per-batch problems run the
// tiled kernel serially inside the per-batch worker.
func BatchMatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 3 || len(b.Shape) != 3 || a.Shape[0] != b.Shape[0] || a.Shape[2] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: BatchMatMul shapes %v, %v", a.Shape, b.Shape))
	}
	bs, m, k, n := a.Shape[0], a.Shape[1], a.Shape[2], b.Shape[2]
	out := Scratch(bs, m, n)
	tiled := useTiled(m, k, n)
	ParallelRows(bs, func(s, e int) {
		for bi := s; bi < e; bi++ {
			ab := a.Data[bi*m*k : (bi+1)*m*k]
			bb := b.Data[bi*k*n : (bi+1)*k*n]
			ob := out.Data[bi*m*n : (bi+1)*m*n]
			if tiled {
				matmulTiledInto(ob, ab, bb, m, k, n, false)
				continue
			}
			for i := 0; i < m; i++ {
				arow := ab[i*k : (i+1)*k]
				orow := ob[i*n : (i+1)*n]
				for p := 0; p < k; p++ {
					av := arow[p]
					if av == 0 {
						continue
					}
					brow := bb[p*n : (p+1)*n]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	})
	return out
}

// BatchMatMulTransB multiplies a [B,m,k] @ bᵀ [B,n,k] -> [B,m,n];
// the Q@Kᵀ pattern in attention. Dispatches per batch element like
// BatchMatMul.
func BatchMatMulTransB(a, b *Tensor) *Tensor {
	if len(a.Shape) != 3 || len(b.Shape) != 3 || a.Shape[0] != b.Shape[0] || a.Shape[2] != b.Shape[2] {
		panic(fmt.Sprintf("tensor: BatchMatMulTransB shapes %v, %v", a.Shape, b.Shape))
	}
	bs, m, k, n := a.Shape[0], a.Shape[1], a.Shape[2], b.Shape[1]
	out := Scratch(bs, m, n)
	tiled := useTiled(m, k, n)
	ParallelRows(bs, func(s, e int) {
		for bi := s; bi < e; bi++ {
			ab := a.Data[bi*m*k : (bi+1)*m*k]
			bb := b.Data[bi*n*k : (bi+1)*n*k]
			ob := out.Data[bi*m*n : (bi+1)*m*n]
			if tiled {
				matmulTransBTiledInto(ob, ab, bb, m, k, n, false)
				continue
			}
			for i := 0; i < m; i++ {
				arow := ab[i*k : (i+1)*k]
				orow := ob[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					brow := bb[j*k : (j+1)*k]
					var sum float32
					for p := 0; p < k; p++ {
						sum += arow[p] * brow[p]
					}
					orow[j] = sum
				}
			}
		}
	})
	return out
}
