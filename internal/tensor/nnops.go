package tensor

import (
	"fmt"
	"math"
)

// Neural-network-specific kernels: numerically stable softmax family,
// layer normalization, and the activation functions used by the
// transformer/MoE stack.

// SoftmaxRows applies a numerically stable softmax to every row of a
// rank-2 tensor and returns the result.
func SoftmaxRows(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("tensor: SoftmaxRows on shape %v", a.Shape))
	}
	r, c := a.Shape[0], a.Shape[1]
	out := Scratch(r, c)
	Parallel(r, func(s, e int) {
		for i := s; i < e; i++ {
			softmaxRow(out.Data[i*c:(i+1)*c], a.Data[i*c:(i+1)*c])
		}
	})
	return out
}

func softmaxRow(dst, src []float32) {
	m := src[0]
	for _, v := range src[1:] {
		if v > m {
			m = v
		}
	}
	var sum float64
	for j, v := range src {
		ev := math.Exp(float64(v - m))
		dst[j] = float32(ev)
		sum += ev
	}
	inv := float32(1 / sum)
	for j := range dst {
		dst[j] *= inv
	}
}

// LogSoftmaxRows applies log-softmax to every row of a rank-2 tensor.
func LogSoftmaxRows(a *Tensor) *Tensor {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("tensor: LogSoftmaxRows on shape %v", a.Shape))
	}
	r, c := a.Shape[0], a.Shape[1]
	out := Scratch(r, c)
	Parallel(r, func(s, e int) {
		for i := s; i < e; i++ {
			src := a.Data[i*c : (i+1)*c]
			dst := out.Data[i*c : (i+1)*c]
			m := src[0]
			for _, v := range src[1:] {
				if v > m {
					m = v
				}
			}
			var sum float64
			for _, v := range src {
				sum += math.Exp(float64(v - m))
			}
			lse := float32(math.Log(sum)) + m
			for j, v := range src {
				dst[j] = v - lse
			}
		}
	})
	return out
}

// LayerNormRows normalizes every row to zero mean and unit variance,
// then applies elementwise gain and bias. gamma and beta have shape
// [cols]; eps guards the variance.
func LayerNormRows(a, gamma, beta *Tensor, eps float32) *Tensor {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("tensor: LayerNormRows on shape %v", a.Shape))
	}
	r, c := a.Shape[0], a.Shape[1]
	if gamma.Len() != c || beta.Len() != c {
		panic(fmt.Sprintf("tensor: LayerNormRows gamma/beta length %d/%d, want %d", gamma.Len(), beta.Len(), c))
	}
	out := Scratch(r, c)
	Parallel(r, func(s, e int) {
		for i := s; i < e; i++ {
			src := a.Data[i*c : (i+1)*c]
			dst := out.Data[i*c : (i+1)*c]
			var mean float64
			for _, v := range src {
				mean += float64(v)
			}
			mean /= float64(c)
			var varsum float64
			for _, v := range src {
				d := float64(v) - mean
				varsum += d * d
			}
			inv := 1 / math.Sqrt(varsum/float64(c)+float64(eps))
			for j, v := range src {
				dst[j] = float32((float64(v)-mean)*inv)*gamma.Data[j] + beta.Data[j]
			}
		}
	})
	return out
}

// GELU applies the Gaussian error linear unit (tanh approximation)
// elementwise.
func GELU(a *Tensor) *Tensor {
	return Apply(a, geluScalar)
}

func geluScalar(x float32) float32 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	xf := float64(x)
	return float32(0.5 * xf * (1 + math.Tanh(c*(xf+0.044715*xf*xf*xf))))
}

// GELUGrad returns d/dx GELU(x) evaluated elementwise at a.
func GELUGrad(a *Tensor) *Tensor {
	return Apply(a, func(x float32) float32 {
		const c = 0.7978845608028654
		xf := float64(x)
		inner := c * (xf + 0.044715*xf*xf*xf)
		t := math.Tanh(inner)
		dinner := c * (1 + 3*0.044715*xf*xf)
		return float32(0.5*(1+t) + 0.5*xf*(1-t*t)*dinner)
	})
}

// ReLU applies max(0,x) elementwise.
func ReLU(a *Tensor) *Tensor {
	return Apply(a, func(x float32) float32 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// Sigmoid applies the logistic function elementwise.
func Sigmoid(a *Tensor) *Tensor {
	return Apply(a, func(x float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(x))))
	})
}

// Tanh applies tanh elementwise.
func Tanh(a *Tensor) *Tensor {
	return Apply(a, func(x float32) float32 {
		return float32(math.Tanh(float64(x)))
	})
}
