package fault

import (
	"reflect"
	"testing"

	"bagualu/internal/mpi"
)

// The whole point of the injector: the same seed must reproduce the
// same schedule exactly, and a different seed must not.
func TestFaultScheduleDeterministic(t *testing.T) {
	cfg := Config{
		Seed: 42, Ranks: 16, Steps: 200, MTBFSteps: 40,
		Stragglers: 2, StragglerMult: 6, CorruptProb: 0.001, DropProb: 0.001,
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(cfg)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatalf("same seed, different schedules:\n%v\n%v", a.Events(), b.Events())
	}
	if len(a.Events()) == 0 {
		t.Fatal("schedule empty — parameters should produce events")
	}
	cfg.Seed = 43
	c, _ := New(cfg)
	if reflect.DeepEqual(a.Events(), c.Events()) {
		t.Fatal("different seeds produced identical schedules")
	}

	// The wire-fault verdict stream is deterministic too.
	w1 := mpi.NewWorld(cfg.Ranks, nil)
	w2 := mpi.NewWorld(cfg.Ranks, nil)
	c.Arm(w1)
	c2, _ := New(cfg)
	c2.Arm(w2)
}

func TestCrashScheduleShape(t *testing.T) {
	inj, err := New(Config{Seed: 7, Ranks: 8, Steps: 100, MTBFSteps: 10, MaxCrashes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.Crashes(); got == 0 || got > 3 {
		t.Fatalf("crashes = %d, want 1..3", got)
	}
	seen := map[int]bool{}
	for _, e := range inj.Events() {
		if e.Kind != EventCrash {
			continue
		}
		if e.Step < 1 || e.Step >= 100 {
			t.Fatalf("crash outside run: %v", e)
		}
		if seen[e.Rank] {
			t.Fatalf("rank %d crashes twice", e.Rank)
		}
		seen[e.Rank] = true
		if !inj.CrashesAt(e.Rank, e.Step) || inj.CrashAt(e.Rank) != e.Step {
			t.Fatalf("lookup disagrees with schedule: %v", e)
		}
	}
}

func TestStragglersAvoidCrashedRanks(t *testing.T) {
	inj, err := New(Config{Seed: 5, Ranks: 6, Steps: 50, MTBFSteps: 5, Stragglers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range inj.Events() {
		if e.Kind == EventStraggler && inj.CrashAt(e.Rank) >= 0 {
			t.Fatalf("straggler %d is also scheduled to crash", e.Rank)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Ranks: 0, Steps: 10}); err == nil {
		t.Fatal("ranks=0 accepted")
	}
	if _, err := New(Config{Ranks: 4, Steps: 10, CorruptProb: 0.9, DropProb: 0.9}); err == nil {
		t.Fatal("probabilities summing >1 accepted")
	}
	if _, err := New(Config{Ranks: 4, Steps: 10, StragglerMult: 0.5}); err == nil {
		t.Fatal("sub-unit straggler multiplier accepted")
	}
}

// Armed wire faults must actually fire on a world with matching
// probabilities — and fire identically across two worlds.
func TestArmedWireFaultsFire(t *testing.T) {
	cfg := Config{Seed: 9, Ranks: 2, Steps: 10, DropProb: 0.2}
	run := func() (drops int) {
		inj, _ := New(cfg)
		w := mpi.NewWorld(2, nil)
		inj.Arm(w)
		w.Run(func(c *mpi.Comm) {
			for i := 0; i < 50; i++ {
				if c.Rank() == 0 {
					c.Send(1, i, []float32{1, 2})
				} else {
					if err := mpi.Protect(func() { c.Recv(0, i) }); err != nil {
						drops++
					}
				}
			}
		})
		return drops
	}
	a, b := run(), run()
	if a == 0 {
		t.Fatal("20% drop probability over 50 messages never fired")
	}
	if a != b {
		t.Fatalf("wire-fault pattern not reproducible: %d vs %d", a, b)
	}
}
