// Package fault is a deterministic, seedable fault injector for the
// simulated world. BaGuaLu-scale machines fail constantly — at 96,000
// nodes even a generous per-node MTBF puts the machine-level MTBF in
// the minutes-to-hours range — so the reproduction's experiments need
// reproducible failures: the same seed must yield the same crash
// schedule, the same straggler set, and the same wire-fault pattern,
// run after run, or goodput comparisons across checkpoint intervals
// measure noise instead of policy.
//
// The injector precomputes the whole schedule at construction (crash
// times drawn from an exponential inter-arrival process, stragglers
// and their delay multipliers from independent streams) and derives
// wire faults from a stateless hash of (src, dst, seq), so nothing
// depends on goroutine interleaving.
package fault

import (
	"fmt"
	"math"
	"sort"

	"bagualu/internal/mpi"
	"bagualu/internal/tensor"
)

// Config parameterizes one fault schedule.
type Config struct {
	Seed  uint64
	Ranks int // world size
	Steps int // run length the schedule spans

	// MTBFSteps is the mean time between rank crashes, in steps,
	// across the whole world (exponential inter-arrivals). 0 disables
	// crashes.
	MTBFSteps float64
	// MaxCrashes caps the number of crash events (0 means unlimited
	// within Steps).
	MaxCrashes int

	// Stragglers picks this many ranks to run slow for the whole run.
	Stragglers int
	// StragglerMult is the delay multiplier applied to a straggler's
	// links (default 4).
	StragglerMult float64

	// CorruptProb / DropProb are per-message probabilities of a wire
	// payload being corrupted or destroyed. Kept out of the crash
	// schedule: they are evaluated per message via a stateless hash.
	CorruptProb float64
	DropProb    float64
}

// EventKind labels one scheduled fault.
type EventKind int

const (
	// EventCrash is a fail-stop of a rank at a step boundary.
	EventCrash EventKind = iota
	// EventStraggler is a rank running slow for the whole run.
	EventStraggler
)

func (k EventKind) String() string {
	if k == EventCrash {
		return "crash"
	}
	return "straggler"
}

// Event is one scheduled fault.
type Event struct {
	Kind EventKind
	Rank int
	Step int     // crash: step boundary at which the rank dies
	Mult float64 // straggler: delay multiplier
}

func (e Event) String() string {
	if e.Kind == EventCrash {
		return fmt.Sprintf("crash(rank=%d, step=%d)", e.Rank, e.Step)
	}
	return fmt.Sprintf("straggler(rank=%d, x%.1f)", e.Rank, e.Mult)
}

// Injector holds a precomputed fault schedule.
type Injector struct {
	cfg     Config
	events  []Event
	crashAt []int // per rank: step boundary of its crash, -1 if none
}

// New draws the schedule from cfg. Crash inter-arrival times are
// exponential with mean MTBFSteps; victims are uniform over ranks not
// already dead. Stragglers are drawn without replacement from the
// surviving-at-step-0 population.
func New(cfg Config) (*Injector, error) {
	if cfg.Ranks <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("fault: ranks %d / steps %d", cfg.Ranks, cfg.Steps)
	}
	if cfg.CorruptProb < 0 || cfg.DropProb < 0 || cfg.CorruptProb+cfg.DropProb > 1 {
		return nil, fmt.Errorf("fault: invalid wire fault probabilities %v + %v", cfg.CorruptProb, cfg.DropProb)
	}
	if cfg.StragglerMult == 0 {
		cfg.StragglerMult = 4
	}
	if cfg.StragglerMult < 1 {
		return nil, fmt.Errorf("fault: straggler multiplier %v < 1", cfg.StragglerMult)
	}
	inj := &Injector{cfg: cfg, crashAt: make([]int, cfg.Ranks)}
	for i := range inj.crashAt {
		inj.crashAt[i] = -1
	}
	root := tensor.NewRNG(cfg.Seed)
	crashRNG := root.Split()
	stragRNG := root.Split()

	if cfg.MTBFSteps > 0 {
		dead := make(map[int]bool)
		at := 0.0
		for {
			// Exponential gap; at least the next step boundary.
			u := crashRNG.Float64()
			at += -cfg.MTBFSteps * math.Log(1-u)
			step := int(at)
			if step < 1 {
				step = 1
			}
			if step >= cfg.Steps || len(dead) >= cfg.Ranks-1 {
				break
			}
			if cfg.MaxCrashes > 0 && len(dead) >= cfg.MaxCrashes {
				break
			}
			victim := crashRNG.Intn(cfg.Ranks)
			for dead[victim] {
				victim = crashRNG.Intn(cfg.Ranks)
			}
			dead[victim] = true
			inj.crashAt[victim] = step
			inj.events = append(inj.events, Event{Kind: EventCrash, Rank: victim, Step: step})
		}
	}
	if cfg.Stragglers > 0 {
		pool := make([]int, 0, cfg.Ranks)
		for r := 0; r < cfg.Ranks; r++ {
			if inj.crashAt[r] < 0 {
				pool = append(pool, r)
			}
		}
		n := cfg.Stragglers
		if n > len(pool) {
			n = len(pool)
		}
		for i := 0; i < n; i++ {
			j := i + stragRNG.Intn(len(pool)-i)
			pool[i], pool[j] = pool[j], pool[i]
			inj.events = append(inj.events, Event{
				Kind: EventStraggler, Rank: pool[i], Mult: cfg.StragglerMult,
			})
		}
	}
	sort.SliceStable(inj.events, func(i, j int) bool { return inj.events[i].Step < inj.events[j].Step })
	return inj, nil
}

// Scripted builds an injector with an explicit event list instead of a
// drawn schedule — tests and demos that need a failure at a precise
// (rank, step). Wire-fault probabilities and the seed still come from
// cfg; MTBFSteps/Stragglers in cfg are ignored.
func Scripted(cfg Config, events []Event) (*Injector, error) {
	if cfg.Ranks <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("fault: ranks %d / steps %d", cfg.Ranks, cfg.Steps)
	}
	if cfg.CorruptProb < 0 || cfg.DropProb < 0 || cfg.CorruptProb+cfg.DropProb > 1 {
		return nil, fmt.Errorf("fault: invalid wire fault probabilities %v + %v", cfg.CorruptProb, cfg.DropProb)
	}
	inj := &Injector{cfg: cfg, crashAt: make([]int, cfg.Ranks)}
	for i := range inj.crashAt {
		inj.crashAt[i] = -1
	}
	for _, e := range events {
		if e.Rank < 0 || e.Rank >= cfg.Ranks {
			return nil, fmt.Errorf("fault: event rank %d out of range", e.Rank)
		}
		switch e.Kind {
		case EventCrash:
			if e.Step < 1 || e.Step >= cfg.Steps {
				return nil, fmt.Errorf("fault: crash step %d outside (0, %d)", e.Step, cfg.Steps)
			}
			if inj.crashAt[e.Rank] >= 0 {
				return nil, fmt.Errorf("fault: rank %d crashes twice", e.Rank)
			}
			inj.crashAt[e.Rank] = e.Step
		case EventStraggler:
			if e.Mult < 1 {
				return nil, fmt.Errorf("fault: straggler multiplier %v < 1", e.Mult)
			}
		}
		inj.events = append(inj.events, e)
	}
	sort.SliceStable(inj.events, func(i, j int) bool { return inj.events[i].Step < inj.events[j].Step })
	return inj, nil
}

// Config returns the schedule's configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// Events returns the precomputed schedule, ordered by step.
func (inj *Injector) Events() []Event { return append([]Event(nil), inj.events...) }

// CrashAt returns the step boundary at which rank dies, or -1.
func (inj *Injector) CrashAt(rank int) int { return inj.crashAt[rank] }

// CrashesAt reports whether rank is scheduled to die entering step.
func (inj *Injector) CrashesAt(rank, step int) bool {
	return inj.crashAt[rank] >= 0 && inj.crashAt[rank] == step
}

// StragglerOf returns rank's scheduled delay multiplier: its straggler
// event's Mult, or 1 when the rank runs at full speed. The fleet router
// uses it to stretch a whole replica's clock domain when the schedule's
// "ranks" are replicas rather than individual processes.
func (inj *Injector) StragglerOf(rank int) float64 {
	for _, e := range inj.events {
		if e.Kind == EventStraggler && e.Rank == rank {
			return e.Mult
		}
	}
	return 1
}

// Crashes counts scheduled crash events.
func (inj *Injector) Crashes() int {
	n := 0
	for _, e := range inj.events {
		if e.Kind == EventCrash {
			n++
		}
	}
	return n
}

// Arm installs the schedule's ambient faults on a world: straggler
// delay multipliers and, when configured, the per-message wire-fault
// hook. Crash events are NOT installed here — they are step-boundary
// decisions the training loop makes by asking CrashesAt, because only
// the loop knows where a step boundary is.
func (inj *Injector) Arm(w *mpi.World) {
	for _, e := range inj.events {
		if e.Kind == EventStraggler {
			w.SetRankDelay(e.Rank, e.Mult)
		}
	}
	if inj.cfg.CorruptProb > 0 || inj.cfg.DropProb > 0 {
		seed, corrupt, drop := inj.cfg.Seed, inj.cfg.CorruptProb, inj.cfg.DropProb
		w.SetWireFaultFn(func(src, dst int, seq int64) mpi.WireFault {
			u := hashUnit(seed, uint64(src), uint64(dst), uint64(seq))
			switch {
			case u < drop:
				return mpi.WireDrop
			case u < drop+corrupt:
				return mpi.WireCorrupt
			default:
				return mpi.WireOK
			}
		})
	}
}

// hashUnit maps (seed, src, dst, seq) to a uniform [0,1) value with a
// SplitMix64-style finalizer — stateless, so the verdict for a given
// message is independent of delivery order.
func hashUnit(seed, src, dst, seq uint64) float64 {
	z := seed ^ src*0x9e3779b97f4a7c15 ^ dst*0xbf58476d1ce4e5b9 ^ seq*0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
