module bagualu

go 1.22
