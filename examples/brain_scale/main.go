// brain_scale: a walkthrough of how BaGuaLu reaches 174 trillion
// parameters on 37 million cores — the memory arithmetic, the role of
// mixed precision and optimizer-state sharding, and the projected
// sustained performance, using the analytic machine model.
//
//	go run ./examples/brain_scale
package main

import (
	"fmt"
	"log"

	"bagualu"
)

func main() {
	machine := bagualu.NewGenerationSunway()
	fmt.Println("machine:", machine)
	fmt.Printf("  half-precision peak: %.2f EFLOPS\n", machine.PeakFlopsFP16()/1e18)
	fmt.Printf("  aggregate memory:    %.0f TiB\n\n", machine.TotalMemGiB()/1024)

	for _, spec := range bagualu.BrainScaleSpecs() {
		fmt.Println(spec)
		fmt.Printf("  dense (replicated) params: %.3g\n", float64(spec.DenseParams()))
		fmt.Printf("  expert (sharded) params:   %.3g (%.1f%% of total)\n",
			float64(spec.ExpertParamsTotal()),
			100*float64(spec.ExpertParamsTotal())/float64(spec.TotalParams()))

		ep := gcd(machine.Nodes(), spec.NumExperts)
		dep := bagualu.Deployment{
			Machine:        machine,
			RanksPerNode:   1,
			DataParallel:   machine.Nodes() / ep,
			ExpertParallel: ep,
			BatchPerRank:   4,
			Precision:      bagualu.Mixed,
			Efficiency:     0.35,
			ZeRO:           true,
			OverlapSync:    true,
		}
		dep.A2A = bagualu.ProjA2AHierarchical
		rep, err := dep.Project(spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  mixed precision, ZeRO, hierarchical a2a:\n")
		fmt.Printf("    memory/node %.1f GiB (budget %.0f) fits=%v\n",
			rep.MemPerNodeGiB, machine.NodeMemGiB, rep.Fits)
		fmt.Printf("    step %.2fs = compute %.2fs + a2a %.2fs (+ sync %.2fs overlapped)\n",
			rep.StepTime, rep.ComputeTime, rep.A2ATime, rep.SyncTime)
		fmt.Printf("    sustained %.2f EFLOPS (%.0f%% of mixed peak)\n\n",
			rep.SustainedFlops/1e18, 100*rep.PeakFraction)

		// Show why mixed precision is load-bearing at 174T.
		if spec.TotalParams() > 100e12 {
			dep.Precision = bagualu.FP32
			r32, err := dep.Project(spec)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  the same model in pure FP32: %.1f GiB/node -> fits=%v\n",
				r32.MemPerNodeGiB, r32.Fits)
			fmt.Println("  => mixed precision is not an optimization here; it is what")
			fmt.Println("     makes the 174T configuration representable at all.")
		}
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
