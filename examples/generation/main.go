// generation: pretrain a small MoE language model on the synthetic
// corpus, then sample continuations through the KV-cache decode path
// — one prefill over the prompt, then one cached step per token —
// and prove it bit-exact against the full-reforward reference loop
// before showing greedy vs temperature sampling.
//
//	go run ./examples/generation
package main

import (
	"fmt"
	"log"

	"bagualu"
)

func main() {
	const (
		vocab  = 32
		seqLen = 16
		steps  = 150
	)
	r := bagualu.NewRNG(17)
	model := bagualu.NewGPT(bagualu.GPTConfig{
		Vocab: vocab, Dim: 32, Heads: 4, Layers: 2, SeqLen: seqLen, FFNHidden: 64,
	}, r, func(block int, name string, rr *bagualu.RNG) bagualu.Layer {
		return bagualu.NewLocalMoE(name, rr, bagualu.GateConfig{
			Dim: 32, NumExperts: 4, TopK: 2, CapacityFactor: 2, AuxLossWeight: 0.01,
		}, 64)
	})
	// Highly deterministic corpus: next = (3*cur + 1) mod vocab most
	// of the time — learnable and verifiable.
	corpus, err := bagualu.NewCorpus(bagualu.CorpusConfig{
		Vocab: vocab, SeqLen: seqLen, Zipf: 0.5, Determinism: 0.95, Seed: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := bagualu.NewTrainer(model, corpus, bagualu.NewAdam(0.01), bagualu.TrainConfig{
		Batch: 8, Precision: bagualu.FP32,
		Schedule: bagualu.WarmupCosine(5e-3, 5e-4, 10, steps), ClipNorm: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		m := tr.Step()
		if s%30 == 0 || s == steps-1 {
			fmt.Printf("step %3d  loss %.4f\n", m.Step, m.Loss)
		}
	}

	prompt := []int{5}
	const n = 8
	fmt.Printf("\nprompt: %v (corpus rule: next = (3*cur+1) mod %d)\n", prompt, vocab)

	// KV-cache greedy decode: the prompt is prefilled once, then each
	// token reuses the cached keys/values — O(1) attention state per
	// step instead of re-running the whole prefix.
	greedy := model.GenerateKV(prompt, n, 0, nil)
	fmt.Printf("greedy (kv-cache):  %v\n", greedy)

	// The reference loop re-forwards the entire prefix for every
	// token. The inference kernels are batch-invariant, so the two
	// paths must agree bit-exactly — not just approximately.
	ref := model.GenerateReforward(prompt, n, 0, nil)
	for i := range greedy {
		if greedy[i] != ref[i] {
			log.Fatalf("KV decode diverged from reforward at token %d: %v vs %v", i, greedy, ref)
		}
	}
	fmt.Printf("greedy (reforward): %v  — bit-exact match\n", ref)

	follows := 0
	for i := 1; i < len(greedy); i++ {
		if greedy[i] == (greedy[i-1]*3+1)%vocab {
			follows++
		}
	}
	fmt.Printf("                    %d/%d transitions follow the learned rule\n", follows, len(greedy)-1)

	rng := bagualu.NewRNG(8)
	for _, temp := range []float32{0.5, 1.5} {
		out := model.GenerateKV(prompt, n, temp, rng)
		fmt.Printf("T=%.1f:              %v\n", temp, out)
	}
}
