// comm_scaling: a study of the communication substrate — how the
// hierarchical all-to-all and all-reduce algorithms behave across the
// machine's network levels, using virtual time so the topology
// effects are visible on any host.
//
//	go run ./examples/comm_scaling
package main

import (
	"fmt"

	"bagualu"
)

func main() {
	// 32 ranks: 4 supernodes x 4 nodes x 2 ranks.
	machine := bagualu.TestMachine(4, 4)
	topo := bagualu.NewTopology(machine, 2)

	fmt.Println("machine:", machine)
	fmt.Printf("link costs: node %.2gs+%dB/s, supernode %.2gs, machine %.2gs\n\n",
		topo.Alpha[bagualu.LevelNode], int(1/topo.Beta[bagualu.LevelNode]),
		topo.Alpha[bagualu.LevelSupernode], topo.Alpha[bagualu.LevelMachine])

	fmt.Println("== MoE-style all-to-all: 32 ranks, small tokens (latency-bound) ==")
	for _, elems := range []int{16, 256, 4096} {
		times := map[string]float64{}
		msgs := map[string]int64{}
		for name, f := range map[string]func(c *bagualu.Comm, ch [][]float32) [][]float32{
			"pairwise":     func(c *bagualu.Comm, ch [][]float32) [][]float32 { return c.AllToAllPairwise(ch) },
			"hierarchical": func(c *bagualu.Comm, ch [][]float32) [][]float32 { return c.AllToAllHier(ch) },
		} {
			w := bagualu.NewWorld(32, topo)
			w.Run(func(c *bagualu.Comm) {
				chunks := make([][]float32, 32)
				for d := range chunks {
					chunks[d] = make([]float32, elems)
				}
				f(c, chunks)
			})
			times[name] = w.MaxTime()
			msgs[name] = w.Stats().MsgsAt(bagualu.LevelMachine)
		}
		fmt.Printf("%6d floats/pair: pairwise %.3gs (%d interSN msgs) vs hierarchical %.3gs (%d interSN msgs) -> %.2fx\n",
			elems, times["pairwise"], msgs["pairwise"],
			times["hierarchical"], msgs["hierarchical"],
			times["pairwise"]/times["hierarchical"])
	}

	fmt.Println("\n== Gradient all-reduce: ring vs hierarchical ==")
	for _, elems := range []int{1 << 10, 1 << 14, 1 << 18} {
		var ring, hier float64
		for name, f := range map[string]func(c *bagualu.Comm, d []float32) []float32{
			"ring": func(c *bagualu.Comm, d []float32) []float32 { return c.AllReduceRing(d, bagualu.OpSum) },
			"hier": func(c *bagualu.Comm, d []float32) []float32 { return c.AllReduceHier(d, bagualu.OpSum) },
		} {
			w := bagualu.NewWorld(32, topo)
			w.Run(func(c *bagualu.Comm) { f(c, make([]float32, elems)) })
			if name == "ring" {
				ring = w.MaxTime()
			} else {
				hier = w.MaxTime()
			}
		}
		fmt.Printf("%8d floats: ring %.3gs, hierarchical %.3gs (%.2fx)\n",
			elems, ring, hier, ring/hier)
	}

	fmt.Println("\n== FP16 on the wire: flattened MoE dispatch exchange ==")
	const elems = 256 // floats per rank pair, an MoE dispatch-sized chunk
	dispatch := func(codec bagualu.Codec, overlap bool) (float64, int64) {
		w := bagualu.NewWorld(32, topo)
		w.Run(func(c *bagualu.Comm) {
			counts := make([]int, 32)
			for d := range counts {
				counts[d] = elems
			}
			sb := bagualu.NewSendBuf(counts)
			row := make([]float32, elems)
			for d := 0; d < 32; d++ {
				sb.Append(d, row)
			}
			var local, remote *bagualu.RecvBuf
			if overlap {
				ex := c.BeginExchange(true, codec)
				ex.PostAll(sb)
				ex.Flush()
				local = ex.RecvLocal()
				// Local-expert compute runs here while cross-supernode
				// tokens are still in flight.
				c.Compute(20e-6)
				remote = ex.RecvRemote()
			} else {
				local = c.AllToAllvHier(sb, codec)
				c.Compute(20e-6)
			}
			local.Release()
			if remote != nil {
				remote.Release()
			}
			sb.Release()
		})
		return w.MaxTime(), w.Stats().Snapshot().InterBytes()
	}
	baseT, baseB := dispatch(bagualu.FP32Wire, false)
	fmt.Printf("fp32 blocking: %.3gs, %d interSN bytes\n", baseT, baseB)
	for _, mode := range []struct {
		cc bagualu.CommConfig
	}{
		{bagualu.CommConfig{Codec: bagualu.FP16Wire}},
		{bagualu.CommConfig{Codec: bagualu.FP16Wire, Overlap: true}},
	} {
		tm, b := dispatch(mode.cc.Codec, mode.cc.Overlap)
		fmt.Printf("%-13s: %.3gs, %d interSN bytes (-%.0f%% bytes, %.2fx time)\n",
			mode.cc, tm, b, 100*(1-float64(b)/float64(baseB)), baseT/tm)
	}

	fmt.Println("\n== Where does the crossover sit? ==")
	fmt.Println("Hierarchical aggregation trades extra intra-supernode hops for")
	fmt.Println("far fewer inter-supernode messages: it wins when the exchange is")
	fmt.Println("latency-bound (many ranks, small per-pair payloads — exactly the")
	fmt.Println("MoE dispatch regime) and loses when single transfers are large")
	fmt.Println("enough that staging bandwidth dominates.")
}
