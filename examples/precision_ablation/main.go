// precision_ablation (experiment R5): train the same MoE language
// model under FP32, pure FP16, and the paper's mixed-precision policy
// (FP16 compute + FP32 master weights + dynamic loss scaling), and
// compare convergence. The expected shape: mixed tracks FP32 closely;
// pure FP16 trails or destabilizes once updates drop below the FP16
// resolution.
//
//	go run ./examples/precision_ablation
package main

import (
	"fmt"
	"log"

	"bagualu"
)

const (
	vocab  = 64
	dim    = 32
	seqLen = 16
	steps  = 80
)

func run(prec bagualu.Precision) ([]float32, int) {
	r := bagualu.NewRNG(11)
	model := bagualu.NewGPT(bagualu.GPTConfig{
		Vocab: vocab, Dim: dim, Heads: 4, Layers: 2, SeqLen: seqLen, FFNHidden: 64,
	}, r, func(block int, name string, rr *bagualu.RNG) bagualu.Layer {
		return bagualu.NewLocalMoE(name, rr, bagualu.GateConfig{
			Dim: dim, NumExperts: 4, TopK: 2, CapacityFactor: 1.5, AuxLossWeight: 0.01,
		}, 64)
	})
	corpus, err := bagualu.NewCorpus(bagualu.CorpusConfig{
		Vocab: vocab, SeqLen: seqLen, Zipf: 1.0, Determinism: 0.9, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := bagualu.NewTrainer(model, corpus, bagualu.NewAdam(0.01), bagualu.TrainConfig{
		Batch: 8, Precision: prec, Schedule: bagualu.ConstantLR(2e-3), ClipNorm: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	var losses []float32
	for s := 0; s < steps; s++ {
		m := tr.Step()
		if !m.Skipped {
			losses = append(losses, m.Loss)
		}
	}
	return losses, tr.MP.SkippedSteps()
}

func main() {
	results := map[string][]float32{}
	skips := map[string]int{}
	for _, p := range []bagualu.Precision{bagualu.FP32, bagualu.FP16, bagualu.Mixed, bagualu.BF16} {
		losses, skipped := run(p)
		results[p.String()] = losses
		skips[p.String()] = skipped
	}

	fmt.Printf("%-6s  %10s  %10s  %10s  %10s\n", "step", "fp32", "fp16", "mixed", "bf16")
	for s := 0; s < steps; s += 10 {
		fmt.Printf("%-6d", s)
		for _, k := range []string{"fp32", "fp16", "mixed", "bf16"} {
			l := results[k]
			if s < len(l) {
				fmt.Printf("  %10.4f", l[s])
			} else {
				fmt.Printf("  %10s", "-")
			}
		}
		fmt.Println()
	}
	final := func(k string) float32 {
		l := results[k]
		return l[len(l)-1]
	}
	fmt.Printf("\nfinal:  fp32 %.4f   fp16 %.4f   mixed %.4f   bf16 %.4f\n",
		final("fp32"), final("fp16"), final("mixed"), final("bf16"))
	fmt.Printf("overflow-skipped steps: fp32 %d, fp16 %d, mixed %d, bf16 %d\n",
		skips["fp32"], skips["fp16"], skips["mixed"], skips["bf16"])

	gap := final("mixed") - final("fp32")
	fmt.Printf("\nmixed-vs-fp32 final-loss gap: %+.4f ", gap)
	if gap < 0.1 {
		fmt.Println("(mixed precision tracks fp32 — the paper's numerical strategy holds)")
	} else {
		fmt.Println("(unexpectedly large gap)")
	}
}
