// Fault tolerance: run a distributed MoE training job with a scripted
// rank crash, let the fault-tolerant loop detect it, shrink the world,
// restore from the last sharded checkpoint, and finish the run — then
// print the goodput accounting.
//
//	go run ./examples/fault_tolerance
package main

import (
	"fmt"
	"log"
	"os"

	"bagualu"
)

func main() {
	const (
		ranks = 4
		steps = 12
	)
	dir, err := os.MkdirTemp("", "bagualu-ft-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Rank 2 fail-stops entering step 7. The schedule is explicit here;
	// bagualu.NewFaultInjector draws reproducible schedules from an
	// MTBF instead.
	inj, err := bagualu.ScriptedFaults(bagualu.FaultConfig{Ranks: ranks, Steps: steps},
		[]bagualu.FaultEvent{{Rank: 2, Step: 7}})
	if err != nil {
		log.Fatal(err)
	}

	topo := bagualu.NewTopology(bagualu.TestMachine(2, 2), 1)
	w := bagualu.NewWorld(ranks, topo)
	cfg := bagualu.FTConfig{
		Strategy: bagualu.Strategy{DataParallel: 1, ExpertParallel: ranks},
		Model: bagualu.ModelConfig{
			GPT:            bagualu.GPTConfig{Vocab: 64, Dim: 16, Heads: 2, Layers: 2, SeqLen: 8, FFNHidden: 32},
			NumExperts:     12,
			TopK:           2,
			CapacityFactor: 2,
			AuxLossWeight:  0.01,
			MoEHidden:      32,
			MoEEvery:       1,
		},
		Corpus: bagualu.CorpusConfig{Vocab: 64, SeqLen: 8, Zipf: 0.5, Determinism: 0.9, Seed: 7},
		Train: bagualu.TrainConfig{
			Batch: 4, Precision: bagualu.FP32,
			Schedule: bagualu.ConstantLR(1e-2), ClipNorm: 1,
		},
		Seed:  11,
		Steps: steps,
		Policy: &bagualu.FaultPolicy{
			Dir: dir, Interval: 3, Async: true, DiskBWGiBs: 0.5, MaxRecoveries: 2,
		},
		OptFor:       func() bagualu.Optimizer { return bagualu.NewAdam(0) },
		ComputeFLOPS: 2e8,
	}

	res, err := bagualu.RunFaultTolerant(w, cfg, inj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("completed:   %v (%d steps, final loss %.4f)\n", res.Completed, res.Steps, res.FinalLoss)
	fmt.Printf("failures:    %d rank(s) lost, %d recovery(ies), world %d -> %d\n",
		res.Failures, res.Recoveries, ranks, res.FinalWorld)
	fmt.Printf("goodput:     %.3f (useful %.4fs of %.4fs virtual)\n", res.Goodput, res.UsefulSim, res.TotalSim)
	fmt.Printf("phases:      snapshot %.5fs  flush %.5fs  recovery %.5fs\n",
		res.Timing.Snapshot, res.Timing.Flush, res.Timing.Recovery)

	latest, err := bagualu.CkptLatest(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoints: latest committed step %d under %s\n", latest, dir)
	if !res.Completed {
		os.Exit(1)
	}
}
