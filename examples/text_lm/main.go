// text_lm: byte-level language modeling on real text with the MoE
// stack — demonstrating that the library is not tied to the synthetic
// corpus. A small public-domain passage is embedded below; pass
// -file to train on your own text instead.
//
//	go run ./examples/text_lm
//	go run ./examples/text_lm -file /path/to/corpus.txt -steps 400
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"bagualu"
	"bagualu/internal/data"
)

// A public-domain passage (Lincoln, Gettysburg Address) repeated to
// give the byte-level model enough signal at this tiny scale.
const builtinText = `Four score and seven years ago our fathers brought forth on this
continent, a new nation, conceived in Liberty, and dedicated to the
proposition that all men are created equal. Now we are engaged in a
great civil war, testing whether that nation, or any nation so
conceived and so dedicated, can long endure. We are met on a great
battle-field of that war. We have come to dedicate a portion of that
field, as a final resting place for those who here gave their lives
that that nation might live. It is altogether fitting and proper that
we should do this. `

func main() {
	var (
		file   = flag.String("file", "", "path to a text file (default: builtin passage)")
		steps  = flag.Int("steps", 200, "training steps")
		seqLen = flag.Int("seq", 32, "sequence length in bytes")
		prompt = flag.String("prompt", "Four score and ", "generation prompt")
	)
	flag.Parse()

	var text []byte
	if *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		text = b
	} else {
		text = []byte(strings.Repeat(builtinText, 8))
	}
	corpus, err := data.NewTextCorpusFromBytes(text, *seqLen, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d bytes, byte-level vocab %d\n", corpus.Len(), data.ByteVocab)

	r := bagualu.NewRNG(5)
	model := bagualu.NewGPT(bagualu.GPTConfig{
		Vocab: data.ByteVocab, Dim: 64, Heads: 4, Layers: 2,
		SeqLen: *seqLen, FFNHidden: 128,
	}, r, func(block int, name string, rr *bagualu.RNG) bagualu.Layer {
		return bagualu.NewLocalMoE(name, rr, bagualu.GateConfig{
			Dim: 64, NumExperts: 4, TopK: 2, CapacityFactor: 2, AuxLossWeight: 0.01,
		}, 128)
	})
	fmt.Printf("model: %d parameters\n", model.NumParams())

	opt := bagualu.NewAdam(0.01)
	sched := bagualu.WarmupCosine(3e-3, 3e-4, *steps/10, *steps)
	params := model.Params()

	// Hand-rolled training loop over the text corpus.
	var loss bagualu.LMLoss
	for s := 0; s < *steps; s++ {
		ids, targets := corpus.Batch(8)
		lv := loss.Forward(model.Forward(ids), targets)
		bagualu.ZeroGrads(params)
		model.Backward(loss.Backward())
		bagualu.ClipGradNorm(params, 1)
		opt.Step(params, sched.LR(s))
		if s%40 == 0 || s == *steps-1 {
			fmt.Printf("step %3d  loss %.4f  bits/byte %.2f\n", s, lv, float64(lv)/math.Ln2)
		}
	}

	out := model.Generate(bagualu.EncodeText(*prompt), 80, 0.7, bagualu.NewRNG(9))
	fmt.Printf("\nprompt: %q\n", *prompt)
	fmt.Printf("model continues:\n%q\n", bagualu.DecodeText(out[len(*prompt):]))
}
