// moe_text: distributed hybrid-parallel pretraining of a multimodal
// MoE language model — the workload the BaGuaLu paper targets, at
// laptop scale. Eight simulated ranks form a 2 (data) × 4 (expert)
// MoDa grid on a two-supernode machine; the example tracks loss,
// capacity overflow, and the expert load-balance histogram as
// training proceeds.
//
//	go run ./examples/moe_text
package main

import (
	"fmt"
	"log"
	"strings"

	"bagualu"
)

func main() {
	const steps = 25

	machine := bagualu.TestMachine(2, 2) // 2 supernodes x 2 nodes
	topo := bagualu.NewTopology(machine, 2)
	strat := bagualu.Strategy{DataParallel: 2, ExpertParallel: 4}
	world := bagualu.NewWorld(strat.Size(), topo)

	mc := bagualu.ModelConfig{
		GPT: bagualu.GPTConfig{
			Vocab: 512, Dim: 64, Heads: 4, Layers: 2, SeqLen: 32, FFNHidden: 128,
		},
		NumExperts:     8,
		TopK:           2,
		CapacityFactor: 1.25,
		AuxLossWeight:  0.01,
		MoEHidden:      128,
		MoEEvery:       1,
		Algo:           bagualu.A2AHierarchical,
	}
	// Multimodal-flavored corpus: a quarter of the vocabulary are
	// "image tokens" and sequences switch modality mid-stream.
	cc := bagualu.CorpusConfig{
		Vocab: 512, SeqLen: 32, Zipf: 1.1, Determinism: 0.85,
		ImageFrac: 0.25, Seed: 3,
	}
	tc := bagualu.TrainConfig{
		Batch:     4,
		Precision: bagualu.Mixed,
		Schedule:  bagualu.WarmupCosine(2e-3, 2e-4, 3, steps),
		ClipNorm:  1,
	}

	counts := make([]int, mc.NumExperts)
	world.Run(func(c *bagualu.Comm) {
		e, err := bagualu.NewEngine(c, strat, mc, cc, tc, bagualu.NewAdam(0.01), 42)
		if err != nil {
			log.Fatalf("rank %d: %v", c.Rank(), err)
		}
		if c.Rank() == 0 {
			fmt.Printf("MoDa grid: dp=%d x ep=%d, %d experts/layer, %d global params\n",
				strat.DataParallel, strat.ExpertParallel, mc.NumExperts, e.NumParamsGlobal())
		}
		for s := 0; s < steps; s++ {
			st := e.Step()
			if c.Rank() == 0 && s%5 == 0 {
				fmt.Printf("step %3d  loss %.4f  aux %.4f  overflow %3d  sim %.3gs\n",
					st.Step, st.Loss, st.AuxLoss, st.Overflow, st.SimTime)
			}
		}
		// Expert utilization at the final step (layer 0, rank 0's
		// gate view).
		if c.Rank() == 0 {
			if r := e.MoELayers()[0].LastRouting(); r != nil {
				copy(counts, r.Counts)
			}
		}
	})

	fmt.Println("\nexpert utilization (layer 0, final step, rank 0 tokens):")
	max := 1
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	for e, n := range counts {
		fmt.Printf("  expert %d %-30s %d\n", e, strings.Repeat("█", n*30/max), n)
	}
}
