// Quickstart: train a small Mixture-of-Experts language model
// in-process with the bagualu public API, checkpoint it, restore it,
// and verify the restored model agrees.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bagualu"
)

func main() {
	const (
		vocab  = 64
		dim    = 32
		seqLen = 16
		steps  = 60
	)
	r := bagualu.NewRNG(7)

	// A GPT whose every block swaps its dense FFN for a local MoE
	// layer: 4 experts, top-2 routing, GShard-style balance loss.
	model := bagualu.NewGPT(bagualu.GPTConfig{
		Vocab: vocab, Dim: dim, Heads: 4, Layers: 2, SeqLen: seqLen, FFNHidden: 64,
	}, r, func(block int, name string, rr *bagualu.RNG) bagualu.Layer {
		return bagualu.NewLocalMoE(name, rr, bagualu.GateConfig{
			Dim: dim, NumExperts: 4, TopK: 2,
			CapacityFactor: 1.5, AuxLossWeight: 0.01,
		}, 64)
	})
	fmt.Printf("model: %d parameters\n", model.NumParams())

	// Synthetic corpus with natural-language-like skew.
	corpus, err := bagualu.NewCorpus(bagualu.CorpusConfig{
		Vocab: vocab, SeqLen: seqLen, Zipf: 1.0, Determinism: 0.9, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	trainer, err := bagualu.NewTrainer(model, corpus, bagualu.NewAdam(0.01), bagualu.TrainConfig{
		Batch:     8,
		Precision: bagualu.FP32,
		Schedule:  bagualu.WarmupCosine(3e-3, 3e-4, 5, steps),
		ClipNorm:  1,
	})
	if err != nil {
		log.Fatal(err)
	}

	for s := 0; s < steps; s++ {
		m := trainer.Step()
		if s%10 == 0 || s == steps-1 {
			fmt.Printf("step %3d  loss %.4f  aux %.4f  lr %.2g\n", m.Step, m.Loss, m.AuxLoss, m.LR)
		}
	}

	// Checkpoint round trip.
	dir, err := os.MkdirTemp("", "bagualu-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.ckpt")
	if err := bagualu.SaveCheckpoint(path, int64(steps), trainer.Params()); err != nil {
		log.Fatal(err)
	}

	// Rebuild the model from scratch and restore.
	r2 := bagualu.NewRNG(999) // different init: the checkpoint must override it
	restored := bagualu.NewGPT(model.Cfg, r2, func(block int, name string, rr *bagualu.RNG) bagualu.Layer {
		return bagualu.NewLocalMoE(name, rr, bagualu.GateConfig{
			Dim: dim, NumExperts: 4, TopK: 2,
			CapacityFactor: 1.5, AuxLossWeight: 0.01,
		}, 64)
	})
	step, err := bagualu.LoadCheckpoint(path, restored.Params())
	if err != nil {
		log.Fatal(err)
	}

	// Same input must produce identical logits.
	ids, _ := corpus.Batch(1)
	a := model.Forward(ids)
	b := restored.Forward(ids)
	if !a.AllClose(b, 1e-6) {
		log.Fatal("restored model disagrees with original")
	}
	fmt.Printf("checkpoint restored at step %d; restored model matches exactly\n", step)
}
