#!/bin/sh
# Repo verification gate: build, vet, full test suite, then the race
# detector over the packages with concurrency-sensitive hot paths
# (buffer pool / persistent workers, simulated MPI runtime, the
# two-phase MoE exchange, the trainer that drives it, and the
# fault-tolerance stack: injector, sharded async checkpointing, and the
# in-run recovery loop).
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./internal/tensor/... ./internal/mpi/... ./internal/moe/... ./internal/train/...
go test -race ./internal/fault/... ./internal/ckpt/...
go test -race -run 'TestCrashRecoveryMatchesRestart|TestRepeatedRecovery|TestGoodputAccounting' ./internal/parallel/
# Deterministic replay: the same seed must reproduce the same fault
# schedule and the same wire-fault pattern, run after run.
go test -count=2 -run 'TestFaultScheduleDeterministic|TestArmedWireFaultsFire' ./internal/fault/
