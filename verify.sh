#!/bin/sh
# Repo verification gate: build, vet, full test suite, then the race
# detector over the packages with concurrency-sensitive hot paths
# (buffer pool / persistent workers, simulated MPI runtime, the
# two-phase MoE exchange, the trainer that drives it, and the
# fault-tolerance stack: injector, sharded async checkpointing, and the
# in-run recovery loop).
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./internal/tensor/... ./internal/mpi/... ./internal/moe/... ./internal/train/...
go test -race ./internal/fault/... ./internal/ckpt/... ./internal/health/...
go test -race -run 'TestCrashRecoveryMatchesRestart|TestRepeatedRecovery|TestGoodputAccounting' ./internal/parallel/
# Graceful-degradation gates: the reliable transport must survive the
# race detector under loss, and the escalation tiers must hold their
# acceptance properties (retransmission is loss-transparent and
# bit-exact, straggler mitigation beats no mitigation, tiered beats
# always-rollback and retransmit-only).
go test -race -run 'Transport|Reliable|LinkObservations' ./internal/mpi/
go test -race -run 'TestRetransmitTierBitExactLoss|TestStragglerMitigationImprovesMakespan|TestTieredEscalationBeatsAlternatives' ./internal/parallel/
# Deterministic replay: the same seed must reproduce the same fault
# schedule and the same wire-fault pattern, run after run — and the
# full tiered run (retransmits, mitigations, final loss) must replay
# identically under the scripted injector.
go test -count=2 -run 'TestFaultScheduleDeterministic|TestArmedWireFaultsFire' ./internal/fault/
go test -count=2 -run 'TestEscalationDeterministicReplay' ./internal/parallel/
# Serving gates: the inference engine (KV decode, continuous batching,
# admission) must survive the race detector, and the R13 seeded-replay
# property must hold — a full 4-rank fp16 overlapped serving run
# reproduces every counter and latency quantile exactly, run after run.
go test -race ./internal/serve/...
go test -count=2 -run 'TestServeDeterministicReplay' ./internal/serve/
# Serving-fleet gates (R18): the replicated fleet (router, failover,
# hedging, restore+probe) must survive the race detector; the seeded
# fleet replay must pin every counter, quantile, and token digest
# (-count=2 catches cross-run state leaks); the health monitor's dwell
# time must bound flapping under oscillating samples; every token the
# faulty fleet serves must equal the fault-free single-replica decode;
# and two fleet CLI runs must emit byte-identical R18 tables.
go test -count=2 -run 'TestFleetDeterministicReplay' ./internal/serve/fleet/
go test -run 'TestFleetBitExactTokensUnderFaults|TestFleetFailoverZeroDrop' ./internal/serve/fleet/
go test -run 'TestMonitorDwellBoundsFlapping|TestMonitorResetClearsHistory' ./internal/health/
go build -o /tmp/bagualu-serve ./cmd/bagualu-serve
/tmp/bagualu-serve -fleet-only -replicas 4 -mtbf 30 -csv > /tmp/bagualu-fleet-a.csv
/tmp/bagualu-serve -fleet-only -replicas 4 -mtbf 30 -csv > /tmp/bagualu-fleet-b.csv
cmp /tmp/bagualu-fleet-a.csv /tmp/bagualu-fleet-b.csv
rm -f /tmp/bagualu-serve /tmp/bagualu-fleet-a.csv /tmp/bagualu-fleet-b.csv
# Dropless-MoE gates (R14): the race detector must hold over the
# dropless/expert-choice routing paths and the grouped expert kernel
# (worker-parallel panel packing), and the grouped kernel must replay
# bitwise under the same seed, run after run.
go test -race -run 'Dropless|ExpertChoice|Grouped|ExpertGroup|TestInferRouteMatchesForward' ./internal/moe/ ./internal/nn/ ./internal/tensor/
go test -count=2 -run 'TestGroupedKernelDeterministicReplay' ./internal/tensor/
# Memory-capacity gates (R15/R16): the ZeRO-sharded optimizer and its
# shard collectives must survive the race detector, the sharded run
# must replay bitwise (same losses, same grad norms) run after run,
# and the capacity acceptance bounds must hold (>= 2x max trainable
# params under ZeRO, sync bytes no worse than the all-reduce).
go test -race -run 'Shard|ReduceScatter|AllGatherShard' ./internal/mpi/
go test -race -run 'ZeRO|SelectiveRecompute|Sharded' ./internal/parallel/ ./internal/train/
go test -count=2 -run 'TestZeROBitExactVsUnsharded|TestZeRODeterministicReplay' ./internal/parallel/
go test -run 'TestZeROAtLeastDoublesMaxParams|TestMemoryLeversMonotone' ./internal/perfmodel/
# Deployment-autotuner gates (R17): the autotune pipeline must survive
# the race detector, the analytic-vs-measured agreement and the plan
# replay must be deterministic run after run (-count=2), and two
# bagualu-plan invocations with the same seed must emit byte-identical
# plans.
go test -race ./internal/autotune/...
go test -count=2 -run 'TestPlanDeterministicReplay|TestPredictStepTracksMeasuredSimsec' ./internal/autotune/
go build -o /tmp/bagualu-plan ./cmd/bagualu-plan
/tmp/bagualu-plan -seed 7 -csv > /tmp/bagualu-plan-a.csv
/tmp/bagualu-plan -seed 7 -csv > /tmp/bagualu-plan-b.csv
cmp /tmp/bagualu-plan-a.csv /tmp/bagualu-plan-b.csv
rm -f /tmp/bagualu-plan /tmp/bagualu-plan-a.csv /tmp/bagualu-plan-b.csv
# Pipeline-parallel gates (R19): the schedule generators, layout
# folding, and the pipelined engine must survive the race detector;
# 1F1B must be bit-exact against the flat trainer and replay
# deterministically (-count=2 catches cross-run state leaks); the
# cross-layout checkpoint matrix (flat <-> folded, Adam moments, ZeRO
# range shards, crash->shrink->restore into fewer stages) must hold;
# and two bagualu-pipe depth sweeps must emit byte-identical R19
# tables.
go test -race ./internal/parallel/pipe/ ./internal/parallel/layout/
go test -race -run 'TestPipeline' ./internal/parallel/
go test -count=2 -run 'TestPipelineBitExactVsNoPP|TestPipelineDeterministicReplay' ./internal/parallel/
go test -run 'TestPipelineCrossLayoutRestore|TestPipelineZeROCrossLayoutRestore|TestPipelineCrashShrinkRestore' ./internal/parallel/
go build -o /tmp/bagualu-pipe ./cmd/bagualu-pipe
/tmp/bagualu-pipe -csv > /tmp/bagualu-pipe-a.csv
/tmp/bagualu-pipe -csv > /tmp/bagualu-pipe-b.csv
cmp /tmp/bagualu-pipe-a.csv /tmp/bagualu-pipe-b.csv
rm -f /tmp/bagualu-pipe /tmp/bagualu-pipe-a.csv /tmp/bagualu-pipe-b.csv
