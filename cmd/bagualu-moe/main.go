// Command bagualu-moe regenerates experiment R14: dropless MoE
// routing and grouped expert GEMM.
//
// Table A times the grouped expert kernel (one batched GEMM per layer
// across all expert row blocks) against the per-expert loop it
// replaced, on skewed batches at several expert counts — the
// perf_opt headline.
//
// Table B trains the hybrid-parallel engine across corpus skews
// (Zipf exponents) under the three routing disciplines — legacy
// capacity-drop, dropless token-choice, and expert-choice —
// reporting final loss, virtual step time, and overflow (dropped
// assignments; definitionally zero in the dropless modes).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"bagualu/internal/data"
	"bagualu/internal/metrics"
	"bagualu/internal/moe"
	"bagualu/internal/mpi"
	"bagualu/internal/nn"
	"bagualu/internal/parallel"
	"bagualu/internal/simnet"
	"bagualu/internal/sunway"
	"bagualu/internal/tensor"
	"bagualu/internal/train"
)

func main() {
	var (
		steps = flag.Int("steps", 40, "training steps per cell in Table B")
		dp    = flag.Int("dp", 2, "data-parallel degree")
		ep    = flag.Int("ep", 2, "expert-parallel degree")
		batch = flag.Int("batch", 4, "sequences per rank per step")
		reps  = flag.Int("reps", 5, "timing repetitions per cell in Table A")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	emit := func(t *metrics.Table) {
		if *csv {
			t.WriteCSV(os.Stdout)
		} else {
			t.WriteText(os.Stdout)
		}
		fmt.Println()
	}

	emit(groupedTable(*reps))
	emit(routingTable(*steps, *dp, *ep, *batch))
}

// groupedTable is Table A: wall time of one forward+backward over a
// skewed expert batch, grouped kernel vs per-expert loop. The skew is
// the regression shape the grouped dispatch exists for — one hot
// expert with half the rows, the rest split evenly, so at d=hidden=64
// every cold block is below the tiled-GEMM threshold on its own.
func groupedTable(reps int) *metrics.Table {
	const d, hidden = 64, 64
	tab := metrics.NewTable("R14a: grouped vs looped expert GEMM, skewed batch (ms/step, best of reps)",
		"experts", "rows", "grouped-ms", "looped-ms", "speedup")
	for _, experts := range []int{8, 32} {
		rows := make([]int, experts)
		total := 16 * experts
		rows[0] = total / 2
		for e := 1; e < experts; e++ {
			rows[e] = (total - rows[0]) / (experts - 1)
		}
		off := make([]int, experts+1)
		for e, c := range rows {
			off[e+1] = off[e] + c
		}
		r := tensor.NewRNG(21)
		ffns := make([]*nn.FeedForward, experts)
		for e := range ffns {
			ffns[e] = nn.NewFeedForward(fmt.Sprintf("e%d", e), r, d, hidden)
		}
		x := tensor.Randn(r, 1, off[experts], d)
		dout := tensor.Randn(r, 1, off[experts], d)

		eg := nn.NewExpertGroup(ffns)
		grouped := bestOf(reps, func() {
			out, st := eg.Forward(x, off)
			eg.Backward(dout, st)
			_ = out
		})
		looped := bestOf(reps, func() {
			for e := range ffns {
				ye, st := ffns[e].ForwardState(x.RowsView(off[e], off[e+1]))
				ffns[e].BackwardState(dout.RowsView(off[e], off[e+1]), st)
				_ = ye
			}
		})
		tab.AddRow(experts, off[experts],
			fmt.Sprintf("%.3f", grouped*1e3),
			fmt.Sprintf("%.3f", looped*1e3),
			fmt.Sprintf("%.2fx", looped/grouped))
	}
	return tab
}

func bestOf(reps int, f func()) float64 {
	best := 0.0
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		f()
		if dt := time.Since(t0).Seconds(); i == 0 || dt < best {
			best = dt
		}
	}
	return best
}

// routingTable is Table B: loss, virtual step time, and overflow
// after a fixed training budget, across corpus skews and routing
// modes. The corpus Zipf exponent controls how concentrated the
// token distribution is — higher skew concentrates routing on fewer
// experts, which is exactly where capacity truncation hurts.
func routingTable(steps, dp, ep, batch int) *metrics.Table {
	modes := []struct {
		name string
		mode moe.RouteMode
	}{
		{"capacity-drop", moe.CapacityDrop},
		{"token-choice", moe.TokenChoice},
		{"expert-choice", moe.ExpertChoice},
	}
	tab := metrics.NewTable(
		fmt.Sprintf("R14b: routing discipline vs corpus skew (%d steps, dp=%d ep=%d, batch=%d/rank)", steps, dp, ep, batch),
		"zipf", "mode", "final-loss", "simsec/step", "overflow/step")
	for _, zipf := range []float64{0.8, 1.2, 1.6} {
		for _, m := range modes {
			loss, simsec, over := trainOnce(steps, dp, ep, batch, zipf, m.mode)
			tab.AddRow(fmt.Sprintf("%.1f", zipf), m.name,
				fmt.Sprintf("%.4f", loss),
				fmt.Sprintf("%.3e", simsec),
				fmt.Sprintf("%.1f", over))
		}
	}
	return tab
}

func trainOnce(steps, dp, ep, batch int, zipf float64, mode moe.RouteMode) (finalLoss float32, simsecPerStep, overflowPerStep float64) {
	const vocab, dim, seq = 256, 64, 32
	strat := parallel.Strategy{DataParallel: dp, ExpertParallel: ep}
	mc := parallel.ModelConfig{
		GPT: nn.GPTConfig{
			Vocab: vocab, Dim: dim, Heads: 4, Layers: 2,
			SeqLen: seq, FFNHidden: 4 * dim,
		},
		NumExperts:     8,
		TopK:           2,
		CapacityFactor: 1.25, // tight enough that skewed batches overflow
		RouteMode:      mode,
		AuxLossWeight:  0.01,
		MoEHidden:      4 * dim,
		MoEEvery:       1,
		Algo:           moe.Auto,
		MoESimFLOPS:    2e9,
	}
	cc := data.CorpusConfig{
		Vocab: vocab, SeqLen: seq, Zipf: zipf, Determinism: 0.85,
		ImageFrac: 0.25, Seed: 7,
	}
	tc := train.Config{
		Batch:     batch,
		Precision: sunway.FP32,
		Schedule:  train.WarmupCosine{Peak: 3e-3, Floor: 3e-4, Warmup: steps / 10, Total: steps},
		ClipNorm:  1,
	}

	machine := sunway.TestMachine(2, (strat.Size()+3)/4)
	topo := simnet.New(machine, 2)
	world := mpi.NewWorld(strat.Size(), topo)

	var loss float32
	var overflow float64
	world.Run(func(c *mpi.Comm) {
		e, err := parallel.NewEngine(c, strat, mc, cc, tc, train.NewAdam(0.01), 7)
		if err != nil {
			log.Fatal(err)
		}
		for s := 0; s < steps; s++ {
			st := e.Step()
			if c.Rank() == 0 {
				loss = st.Loss
				overflow += float64(st.Overflow)
			}
		}
	})
	return loss, world.MaxTime() / float64(steps), overflow / float64(steps)
}
