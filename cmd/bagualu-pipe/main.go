// Command bagualu-pipe runs the R19 experiment: pipeline parallelism
// vs the flat MoDa grid across model depth. At a fixed rank budget it
// measures token-fair short runs (same tokens per optimizer step) of
// the best flat DP×EP layouts against folded [pp, dp, ep] layouts on
// the virtual clock, alongside the analytic perfmodel prediction, and
// marks each depth's measured winner. Output is a pure function of
// the flags: same seed, byte-identical tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"bagualu/internal/autotune"
	"bagualu/internal/data"
	"bagualu/internal/metrics"
	"bagualu/internal/moe"
	"bagualu/internal/mpi"
	"bagualu/internal/nn"
	"bagualu/internal/parallel"
	"bagualu/internal/perfmodel"
	"bagualu/internal/sunway"
	"bagualu/internal/train"
)

// layout is one point of the depth sweep.
type layout struct {
	dp, ep, pp, vpp int
}

func (l layout) String() string {
	s := fmt.Sprintf("dp%dxep%d", l.dp, l.ep)
	if l.pp > 1 {
		s += fmt.Sprintf("xpp%d", l.pp)
		if l.vpp > 1 {
			s += fmt.Sprintf("v%d", l.vpp)
		}
	}
	return s
}

func main() {
	var (
		batch = flag.Int("batch", 2, "sequences per rank per micro-batch")
		steps = flag.Int("steps", 4, "measured steps per run")
		eff   = flag.Float64("efficiency", 0.3, "sustained fraction of node peak")
		seed  = flag.Uint64("seed", 42, "model-init and corpus seed")
		csv   = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	const ranksPerNode = 2
	machine := sunway.TestMachine(2, 2) // 4 nodes, 8 ranks
	ranks := machine.Nodes() * ranksPerNode

	table := metrics.NewTable(
		fmt.Sprintf("R19: pipeline folding vs flat MoDa across depth (%d ranks, token-fair M=PP)", ranks),
		"layers", "layout", "pred-step(s)", "sim/step(s)", "tokens/simsec", "winner")

	for _, layers := range []int{2, 4, 8, 16} {
		spec := autotune.SearchSpec()
		spec.Layers = layers

		layouts := []layout{
			{dp: ranks, ep: 1}, {dp: ranks / 2, ep: 2}, {dp: ranks / 4, ep: 4},
		}
		for _, pp := range []int{2, 4} {
			if layers%pp != 0 || ranks%pp != 0 {
				continue
			}
			per := ranks / pp
			layouts = append(layouts, layout{dp: per, ep: 1, pp: pp}, layout{dp: per / 2, ep: 2, pp: pp})
			if layers%(pp*2) == 0 {
				layouts = append(layouts, layout{dp: per, ep: 1, pp: pp, vpp: 2})
			}
		}

		type row struct {
			l          layout
			pred, meas float64
		}
		rows := make([]row, 0, len(layouts))
		best := -1
		for _, l := range layouts {
			d := perfmodel.Deployment{
				Machine: machine, RanksPerNode: ranksPerNode,
				DataParallel: l.dp, ExpertParallel: l.ep,
				PipelineParallel: l.pp, VirtualStages: l.vpp,
				BatchPerRank: *batch, Precision: sunway.FP32,
				Efficiency: *eff, A2A: perfmodel.A2AHierarchical,
			}
			if l.pp > 1 {
				// The pipeline runner replays stage-local blocks on
				// the backward pass; price and run recompute-all.
				d.ZeRO, d.RecomputeFraction = true, 1
			}
			pred, err := d.PredictStep(spec, perfmodel.FaultModel{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "bagualu-pipe: L=%d %s: %v\n", layers, l, err)
				os.Exit(1)
			}

			strat := parallel.Strategy{DataParallel: l.dp, ExpertParallel: l.ep,
				Pipeline: l.pp, Virtual: l.vpp}
			tc := train.Config{Batch: *batch, Precision: sunway.FP32}
			rcEvery := 0
			if l.pp > 1 {
				tc.Accum = l.pp
				rcEvery = 1
			}
			res, err := parallel.ShortRun(parallel.ShortRunConfig{
				Machine: machine, RanksPerNode: ranksPerNode,
				Strategy: strat,
				Model: parallel.ModelConfig{
					GPT: nn.GPTConfig{
						Vocab: spec.Vocab, Dim: spec.Dim, Heads: spec.Heads,
						Layers: spec.Layers, SeqLen: spec.SeqLen, FFNHidden: spec.FFNHidden,
					},
					NumExperts: spec.NumExperts, TopK: spec.TopK,
					MoEHidden: spec.MoEHidden, MoEEvery: spec.MoEEvery,
					CapacityFactor: 1.25, AuxLossWeight: 0.01,
					Comm:           moe.CommConfig{Codec: mpi.FP32Wire},
					RecomputeEvery: rcEvery,
				},
				Corpus: data.CorpusConfig{
					Vocab: spec.Vocab, SeqLen: spec.SeqLen, Zipf: 1, Determinism: 0.8,
				},
				Train:      tc,
				OptFor:     train.OptimizerFactory(l.pp > 1, 0),
				Steps:      *steps,
				Warmup:     1,
				Seed:       *seed,
				Efficiency: *eff,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "bagualu-pipe: L=%d %s: %v\n", layers, l, err)
				os.Exit(1)
			}
			rows = append(rows, row{l, pred.StepTime, res.SimPerStep})
			if best < 0 || res.SimPerStep < rows[best].meas {
				best = len(rows) - 1
			}
		}
		// Tokens per optimizer step are layout-invariant (token-fair):
		// perStage ranks × batch × M micros at PP equals ranks × batch flat.
		tokens := float64(ranks * *batch * spec.SeqLen)
		for i, r := range rows {
			mark := ""
			if i == best {
				mark = "<-- best"
			}
			table.AddRow(layers, r.l.String(),
				fmt.Sprintf("%.6g", r.pred), fmt.Sprintf("%.6g", r.meas),
				fmt.Sprintf("%.4g", tokens/r.meas), mark)
		}
	}

	var err error
	if *csv {
		err = table.WriteCSV(os.Stdout)
	} else {
		err = table.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bagualu-pipe: %v\n", err)
		os.Exit(1)
	}
}
