// Command bagualu-train runs end-to-end hybrid-parallel MoE
// pretraining on the simulated machine: it spins up a rank-per-
// goroutine world, builds the MoDa engine on every rank, and trains a
// scaled-down BaGuaLu model on the synthetic multimodal corpus.
//
// Example:
//
//	bagualu-train -dp 2 -ep 4 -steps 50 -experts 8 -precision mixed
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bagualu/internal/data"
	"bagualu/internal/metrics"
	"bagualu/internal/moe"
	"bagualu/internal/mpi"
	"bagualu/internal/nn"
	"bagualu/internal/parallel"
	"bagualu/internal/simnet"
	"bagualu/internal/sunway"
	"bagualu/internal/trace"
	"bagualu/internal/train"
)

func main() {
	var (
		dp        = flag.Int("dp", 2, "data-parallel degree")
		ep        = flag.Int("ep", 4, "expert-parallel degree")
		pp        = flag.Int("pp", 1, "pipeline-parallel stages (folds [pp, dp, ep]; needs accum >= pp)")
		vpp       = flag.Int("vpp", 1, "virtual stages per pipeline stage (interleaved schedule)")
		steps     = flag.Int("steps", 30, "training steps")
		batch     = flag.Int("batch", 4, "sequences per rank per step")
		vocab     = flag.Int("vocab", 256, "vocabulary size")
		dim       = flag.Int("dim", 64, "model dimension")
		heads     = flag.Int("heads", 4, "attention heads")
		layers    = flag.Int("layers", 2, "transformer blocks")
		seq       = flag.Int("seq", 32, "sequence length")
		experts   = flag.Int("experts", 8, "experts per MoE layer")
		topk      = flag.Int("topk", 2, "experts per token")
		capf      = flag.Float64("capacity", 1.5, "capacity factor (capacity-drop mode only)")
		route     = flag.String("route", "token-choice", "routing mode: token-choice|capacity-drop|expert-choice")
		auxw      = flag.Float64("aux", 0.01, "load-balance loss weight")
		precision = flag.String("precision", "fp32", "fp32|fp16|mixed")
		lr        = flag.Float64("lr", 3e-3, "peak learning rate")
		seed      = flag.Uint64("seed", 42, "global seed")
		accum     = flag.Int("accum", 1, "gradient-accumulation micro-batches per step")
		recompute = flag.Bool("recompute", false, "activation checkpointing (recompute in backward)")
		recEvery  = flag.Int("recompute-every", 0, "selective recomputation: recompute every N-th block (0 = off)")
		zero      = flag.Bool("zero", false, "ZeRO-shard Adam optimizer states across data-parallel peers")
		offload   = flag.Bool("offload", false, "offload optimizer state to the host-memory tier (priced on the virtual clock)")
		optName   = flag.String("optimizer", "adam", "adam|lamb|sgd")
		ckpt      = flag.String("checkpoint", "", "path to write the final checkpoint (rank 0 dense shard)")
		rebalance = flag.Int("rebalance", 0, "migrate experts to balance load every N steps (0 = off)")
		traceOut  = flag.String("trace", "", "write a Chrome trace timeline to this path")
		every     = flag.Int("log-every", 5, "print every N steps")
	)
	flag.Parse()

	prec := map[string]sunway.Precision{
		"fp32": sunway.FP32, "fp16": sunway.FP16, "mixed": sunway.Mixed, "bf16": sunway.BF16,
	}[*precision]

	mode, err := moe.ParseRouteMode(*route)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	strat := parallel.Strategy{DataParallel: *dp, ExpertParallel: *ep, Pipeline: *pp, Virtual: *vpp}
	mc := parallel.ModelConfig{
		GPT: nn.GPTConfig{
			Vocab: *vocab, Dim: *dim, Heads: *heads, Layers: *layers,
			SeqLen: *seq, FFNHidden: 4 * *dim,
		},
		NumExperts:     *experts,
		TopK:           *topk,
		CapacityFactor: float32(*capf),
		RouteMode:      mode,
		AuxLossWeight:  float32(*auxw),
		MoEHidden:      4 * *dim,
		MoEEvery:       1,
		Algo:           moe.Auto,
		Recompute:      *recompute,
		RecomputeEvery: *recEvery,
	}
	cc := data.CorpusConfig{
		Vocab: *vocab, SeqLen: *seq, Zipf: 1.0, Determinism: 0.85,
		ImageFrac: 0.25, Seed: *seed,
	}
	tc := train.Config{
		Batch:     *batch,
		Precision: prec,
		Schedule:  train.WarmupCosine{Peak: float32(*lr), Floor: float32(*lr) / 10, Warmup: *steps / 10, Total: *steps},
		ClipNorm:  1,
		Accum:     *accum,
	}
	// One optimizer instance per rank: state is rank-local (and the
	// ZeRO optimizer binds to rank-specific communicators).
	optFor := func() train.Optimizer {
		switch {
		case *zero:
			return train.NewShardedAdam(0.01)
		case *optName == "lamb":
			return train.NewLAMB(0.01)
		case *optName == "sgd":
			return train.NewSGD(0.9)
		default:
			return train.NewAdam(0.01)
		}
	}
	if *zero && *optName != "adam" {
		fmt.Fprintln(os.Stderr, "-zero shards Adam states; -optimizer is ignored")
	}

	machine := sunway.TestMachine(2, (strat.Size()+3)/4)
	topo := simnet.New(machine, 2)
	world := mpi.NewWorld(strat.Size(), topo)

	fmt.Printf("BaGuaLu-sim training: %d ranks (dp=%d x ep=%d), %d experts/layer, precision=%s\n",
		strat.Size(), *dp, *ep, *experts, prec)

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.New()
	}
	var phases *metrics.PhaseMeter
	world.Run(func(c *mpi.Comm) {
		e, err := parallel.NewEngine(c, strat, mc, cc, tc, optFor(), *seed)
		if err != nil {
			log.Fatalf("rank %d: %v", c.Rank(), err)
		}
		e.Trace = rec
		if *offload {
			e.EnableOffload(machine.HostMemBWGiBs)
		}
		if c.Rank() == 0 {
			fmt.Printf("global params: %d (%.2f M), tokens/step: %d, opt state/rank: %.1f KiB\n",
				e.NumParamsGlobal(), float64(e.NumParamsGlobal())/1e6, e.GlobalBatchTokens(),
				float64(e.OptStateBytes())/(1<<10))
		}
		for s := 0; s < *steps; s++ {
			st := e.Step()
			if c.Rank() == 0 && (s%*every == 0 || s == *steps-1) {
				fmt.Printf("step %3d  loss %.4f  aux %.4f  overflow %4d  gnorm %.3f  simtime %.3gs  tok/s(sim) %.3g  sync %.2gs  gather %.2gs\n",
					st.Step, st.Loss, st.AuxLoss, st.Overflow, st.GradNorm, st.SimTime, st.TokensPer,
					st.GradSync, st.ParamGather)
			}
			if *rebalance > 0 && s > 0 && s%*rebalance == 0 {
				var imbBefore, imbAfter float64
				if len(e.MoELayers()) > 0 {
					m := e.MoELayers()[0]
					counts := m.GatherExpertCounts(c)
					imbBefore = m.Placement().Imbalance(counts)
					moves, err := e.RebalanceExperts()
					if err != nil {
						log.Fatalf("rank %d: rebalance: %v", c.Rank(), err)
					}
					imbAfter = m.Placement().Imbalance(counts)
					if c.Rank() == 0 {
						fmt.Printf("        rebalanced %d experts: imbalance %.2f -> %.2f\n", moves, imbBefore, imbAfter)
					}
				}
			}
		}
		if c.Rank() == 0 {
			phases = e.Phases()
		}
		if *ckpt != "" && c.Rank() == 0 {
			f, err := os.Create(*ckpt)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			if err := train.Save(f, train.Header{Step: int64(*steps)}, e.Trainer.Params()); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("checkpoint written to %s\n", *ckpt)
		}
	})

	if rec != nil {
		if err := rec.WriteFile(*traceOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (%d events)\n", *traceOut, rec.Len())
	}

	if phases != nil && phases.Total() > 0 {
		fmt.Printf("\nmemory-capacity phases (rank 0, virtual seconds):")
		for _, name := range phases.Names() {
			if s := phases.Seconds(name); s > 0 {
				fmt.Printf("  %s %.3g", name, s)
			}
		}
		fmt.Println()
	}

	st := world.Stats()
	fmt.Printf("\ntraffic: node %.1f MiB / sn %.1f MiB / machine %.1f MiB; virtual makespan %.3gs\n",
		float64(st.BytesAt(simnet.NodeLevel))/(1<<20),
		float64(st.BytesAt(simnet.SupernodeLevel))/(1<<20),
		float64(st.BytesAt(simnet.MachineLevel))/(1<<20),
		world.MaxTime())
}
