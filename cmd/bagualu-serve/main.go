// Command bagualu-serve regenerates experiments R13 and R18. R13:
// distributed MoE serving throughput versus offered load, comparing
// continuous batching against static batches and one-request-at-a-time
// serving, and the FP16 versus FP32 wire codec, with p50/p99 TTFT,
// TPOT, and end-to-end latency on the virtual clock. R18: goodput and
// tail latency of a fault-tolerant serving fleet (health-routed
// replicas, checkpoint restore, hedged retries) under replica crashes,
// sweeping MTBF x failover policy. Optionally restores model weights
// from a sharded training checkpoint before serving.
package main

import (
	"flag"
	"fmt"
	"os"

	"bagualu/internal/ckpt"
	"bagualu/internal/fault"
	"bagualu/internal/metrics"
	"bagualu/internal/moe"
	"bagualu/internal/mpi"
	"bagualu/internal/nn"
	"bagualu/internal/serve"
	"bagualu/internal/serve/fleet"
	"bagualu/internal/simnet"
	"bagualu/internal/sunway"
	"bagualu/internal/tensor"
)

func main() {
	var (
		ranks = flag.Int("ranks", 16, "serving world size (expert-parallel group)")
		perSN = flag.Int("nodes-per-sn", 4, "nodes per supernode")
		rpn   = flag.Int("ranks-per-node", 2, "ranks per node")

		vocab   = flag.Int("vocab", 64, "vocabulary size")
		dim     = flag.Int("dim", 32, "model width")
		heads   = flag.Int("heads", 4, "attention heads")
		layers  = flag.Int("layers", 2, "transformer blocks")
		seqLen  = flag.Int("seq-len", 48, "context window (bounds prompt+output)")
		hidden  = flag.Int("ffn-hidden", 64, "expert hidden width")
		experts = flag.Int("experts", 16, "global expert count (divisible by ranks)")
		topk    = flag.Int("topk", 2, "experts per token")

		requests = flag.Int("requests", 96, "requests in the synthetic stream")
		baseRate = flag.Float64("base-rate", 40, "offered load at load factor 1.0 (requests/s)")
		seed     = flag.Uint64("seed", 7, "workload + model seed")
		kvBudget = flag.Int("kv-budget", 0, "max in-flight KV tokens per rank (0 = unlimited)")
		maxBatch = flag.Int("max-batch", 0, "max resident sequences per rank (0 = unlimited)")
		queueCap = flag.Int("queue-cap", 0, "admission queue bound (0 = unlimited)")
		sloWait  = flag.Float64("slo-wait", 0, "admission deadline in seconds (0 = none)")

		flops = flag.Float64("flops", 1e9, "virtual FLOP/s per rank")
		memBW = flag.Float64("mem-bw", 1e-3, "weight-streaming bandwidth (GiB/s)")

		ckptDir = flag.String("ckpt", "", "restore weights from this sharded checkpoint dir")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")

		replicas   = flag.Int("replicas", 4, "R18: model replicas behind the fleet router")
		fleetRanks = flag.Int("fleet-ranks", 2, "R18: expert-parallel ranks per replica")
		mtbf       = flag.Int("mtbf", 30, "R18: tightest replica-crash MTBF in steps (sweeps x1, x2, x4)")
		stragglers = flag.Int("stragglers", 1, "R18: straggling replicas (4x delay)")
		hedgeP99   = flag.Float64("hedge-p99", 1.5, "R18: hedge once age exceeds this x online p99")
		fleetRate  = flag.Float64("fleet-rate", 4, "R18: offered load (requests/s); keep near fleet capacity so the run is arrival-dominated")
		fleetOnly  = flag.Bool("fleet-only", false, "emit only the R18 fleet table")
	)
	flag.Parse()
	if *experts%*ranks != 0 {
		fmt.Fprintf(os.Stderr, "experts (%d) must divide by ranks (%d)\n", *experts, *ranks)
		os.Exit(2)
	}

	nodes := (*ranks + *rpn - 1) / *rpn
	sns := (nodes + *perSN - 1) / *perSN
	topo := simnet.New(sunway.TestMachine(sns, *perSN), *rpn)
	gcfg := moe.GateConfig{Dim: *dim, NumExperts: *experts, TopK: *topk, CapacityFactor: 2}
	mcfg := nn.GPTConfig{Vocab: *vocab, Dim: *dim, Heads: *heads, Layers: *layers, SeqLen: *seqLen, FFNHidden: *hidden}

	// One serving measurement: fresh world, same seeds, merged result
	// plus the inter-supernode wire bytes the run moved.
	measure := func(batching serve.Batching, codec mpi.Codec, rate float64) (serve.Result, float64) {
		all := serve.WorkloadConfig{
			Seed: *seed, Requests: *requests, RatePerSec: rate, Vocab: *vocab,
			PromptMin: 4, PromptMax: *seqLen / 3, NewMin: 4, NewMax: *seqLen / 3,
		}.Generate()
		var merged serve.Result
		w := mpi.NewWorld(*ranks, topo)
		w.Run(func(c *mpi.Comm) {
			model := nn.NewGPT(mcfg, tensor.NewRNG(*seed), func(_ int, name string, r *tensor.RNG) nn.Layer {
				m := moe.NewDistMoEComm(name, r, gcfg, *hidden, c, moe.Hierarchical,
					moe.CommConfig{Codec: codec, Overlap: true})
				m.SimRate = *flops
				return m
			})
			if *ckptDir != "" {
				if _, _, err := ckpt.LoadForInference(*ckptDir, model.Params()); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			cfg := serve.Config{
				Batching: batching, MaxBatch: *maxBatch, KVBudget: *kvBudget,
				QueueCap: *queueCap, SLOQueueWait: *sloWait,
				FLOPS: *flops, MemBWGiBs: *memBW,
			}
			res := serve.Run(model, c, cfg, serve.Partition(all, c.Rank(), c.Size()))
			m := res.MergeAcross(c) // collective: every rank participates
			if c.Rank() == 0 {
				merged = m
			}
		})
		return merged, float64(w.Stats().BytesAt(simnet.MachineLevel)) / (1 << 20)
	}

	emit := func(t *metrics.Table) {
		if *csv {
			t.WriteCSV(os.Stdout)
		} else {
			t.WriteText(os.Stdout)
		}
		fmt.Println()
	}

	addRow := func(t *metrics.Table, load float64, mode, codec string, r serve.Result, mb float64) {
		t.AddRow(load, mode, codec,
			r.Throughput(),
			r.TTFT.Quantile(0.5), r.TTFT.Quantile(0.99),
			r.TPOT.Quantile(0.5), r.TPOT.Quantile(0.99),
			r.E2E.Quantile(0.5), r.E2E.Quantile(0.99),
			r.Completed, r.Rejected, mb)
	}
	cols := []string{"load-factor", "batching", "codec", "tok/s",
		"ttft-p50", "ttft-p99", "tpot-p50", "tpot-p99", "e2e-p50", "e2e-p99",
		"completed", "rejected", "interSN-MB"}

	if !*fleetOnly {
		// R13a: throughput vs offered load, per batching policy.
		r13 := metrics.NewTable("R13: serving throughput vs offered load (fp16 wire)", cols...)
		for _, load := range []float64{0.5, 1, 2, 4} {
			for _, b := range []serve.Batching{serve.Serial, serve.Static, serve.Continuous} {
				r, mb := measure(b, mpi.FP16Wire, load**baseRate)
				addRow(r13, load, b.String(), mpi.FP16Wire.String(), r, mb)
			}
		}
		emit(r13)

		// R13b: wire codec under continuous batching at saturation.
		r13b := metrics.NewTable("R13b: wire codec at load factor 2 (continuous batching)", cols...)
		for _, codec := range []mpi.Codec{mpi.FP32Wire, mpi.FP16Wire} {
			r, mb := measure(serve.Continuous, codec, 2**baseRate)
			addRow(r13b, 2, serve.Continuous.String(), codec.String(), r, mb)
		}
		emit(r13b)
	}

	// R18: fleet goodput and tail latency under replica faults,
	// MTBF x failover policy. Replicas use the FP32 wire codec so the
	// bit-exactness contract (every served token equals the fault-free
	// reference decode) holds independent of the codec comparison above.
	if *experts%*fleetRanks != 0 {
		fmt.Fprintf(os.Stderr, "experts (%d) must divide by fleet-ranks (%d)\n", *experts, *fleetRanks)
		os.Exit(2)
	}
	factory := func(c *mpi.Comm) *nn.GPT {
		return nn.NewGPT(mcfg, tensor.NewRNG(*seed), func(_ int, name string, r *tensor.RNG) nn.Layer {
			if c.Size() == 1 {
				return moe.NewLocalMoE(name, r, gcfg, *hidden)
			}
			m := moe.NewDistMoEComm(name, r, gcfg, *hidden, c, moe.Hierarchical,
				moe.CommConfig{Codec: mpi.FP32Wire, Overlap: true})
			m.SimRate = *flops
			return m
		})
	}
	fleetCkpt := *ckptDir
	if fleetCkpt == "" {
		// No training checkpoint given: snapshot the seeded init so
		// restored replicas have weights to reload.
		dir, err := os.MkdirTemp("", "bagualu-fleet-ckpt")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		var werr error
		mpi.NewWorld(1, nil).Run(func(c *mpi.Comm) {
			werr = ckpt.SaveForInference(dir, 0, factory(c).Params())
		})
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fleetCkpt = dir
	}
	// Bounded batches for the fleet: crash/hedge/health decisions all
	// live at step boundaries, so an unlimited batch (the R13 default)
	// would collapse each replica's run into a handful of giant steps.
	fleetBatch, fleetKV := *maxBatch, *kvBudget
	if fleetBatch <= 0 {
		fleetBatch = 4
	}
	if fleetKV <= 0 {
		fleetKV = 64
	}
	fleetReqs := serve.WorkloadConfig{
		Seed: *seed, Requests: *requests, RatePerSec: *fleetRate, Vocab: *vocab,
		PromptMin: 4, PromptMax: *seqLen / 3, NewMin: 4, NewMax: *seqLen / 3,
		Tiers: []float64{1, 2, 1}, // latency-sensitive / standard / batch
	}.Generate()
	r18 := metrics.NewTable("R18: fleet goodput under replica faults (MTBF x policy, fp32 wire)",
		"mtbf-steps", "policy", "goodput", "tok/s",
		"completed", "shed", "dropped", "rejected",
		"retries", "hedges", "hedge-wins", "crashes", "restores", "min-live",
		"ttft-p99", "tpot-p99", "probe-mismatch")
	for _, m := range []int{*mtbf, *mtbf * 2, *mtbf * 4} {
		for _, pol := range []fleet.Policy{fleet.NoFailover, fleet.Failover, fleet.FailoverHedge} {
			res, err := fleet.Run(fleet.Config{
				Replicas: *replicas,
				Ranks:    *fleetRanks,
				Topo:     topo,
				NewModel: factory,
				Engine: serve.Config{
					Batching: serve.Continuous, MaxBatch: fleetBatch, KVBudget: fleetKV,
					Temperature: 0.8, SampleSeed: *seed,
					FLOPS: *flops, MemBWGiBs: *memBW,
				},
				Requests:      fleetReqs,
				Policy:        pol,
				CkptDir:       fleetCkpt,
				RestoreBWGiBs: *memBW,
				TierSLO:       []float64{5, 10, 20},
				HedgeP99:      *hedgeP99,
				WindowPerRank: 2 * fleetBatch, // excess waits at the router, where SLO shedding applies
				Faults: fault.Config{
					Seed: *seed, MTBFSteps: float64(m), MaxCrashes: *replicas - 1,
					Stragglers: *stragglers, StragglerMult: 4,
				},
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			r18.AddRow(m, pol.String(), res.Goodput(), res.TokensPerSec(),
				res.Completed, res.Shed, res.Dropped, res.Rejected,
				res.Retries, res.Hedges, res.HedgeWins, res.Crashes, res.Restores, res.MinLive,
				res.TTFT.Quantile(0.99), res.TPOT.Quantile(0.99),
				res.ProbeMismatches)
		}
	}
	emit(r18)
}
