// Command bagualu-serve regenerates experiment R13: distributed MoE
// serving throughput versus offered load, comparing continuous
// batching against static batches and one-request-at-a-time serving,
// and the FP16 versus FP32 wire codec, with p50/p99 TTFT, TPOT, and
// end-to-end latency on the virtual clock. Optionally restores model
// weights from a sharded training checkpoint before serving.
package main

import (
	"flag"
	"fmt"
	"os"

	"bagualu/internal/ckpt"
	"bagualu/internal/metrics"
	"bagualu/internal/moe"
	"bagualu/internal/mpi"
	"bagualu/internal/nn"
	"bagualu/internal/serve"
	"bagualu/internal/simnet"
	"bagualu/internal/sunway"
	"bagualu/internal/tensor"
)

func main() {
	var (
		ranks = flag.Int("ranks", 16, "serving world size (expert-parallel group)")
		perSN = flag.Int("nodes-per-sn", 4, "nodes per supernode")
		rpn   = flag.Int("ranks-per-node", 2, "ranks per node")

		vocab   = flag.Int("vocab", 64, "vocabulary size")
		dim     = flag.Int("dim", 32, "model width")
		heads   = flag.Int("heads", 4, "attention heads")
		layers  = flag.Int("layers", 2, "transformer blocks")
		seqLen  = flag.Int("seq-len", 48, "context window (bounds prompt+output)")
		hidden  = flag.Int("ffn-hidden", 64, "expert hidden width")
		experts = flag.Int("experts", 16, "global expert count (divisible by ranks)")
		topk    = flag.Int("topk", 2, "experts per token")

		requests = flag.Int("requests", 96, "requests in the synthetic stream")
		baseRate = flag.Float64("base-rate", 40, "offered load at load factor 1.0 (requests/s)")
		seed     = flag.Uint64("seed", 7, "workload + model seed")
		kvBudget = flag.Int("kv-budget", 0, "max in-flight KV tokens per rank (0 = unlimited)")
		maxBatch = flag.Int("max-batch", 0, "max resident sequences per rank (0 = unlimited)")
		queueCap = flag.Int("queue-cap", 0, "admission queue bound (0 = unlimited)")
		sloWait  = flag.Float64("slo-wait", 0, "admission deadline in seconds (0 = none)")

		flops = flag.Float64("flops", 1e9, "virtual FLOP/s per rank")
		memBW = flag.Float64("mem-bw", 1e-3, "weight-streaming bandwidth (GiB/s)")

		ckptDir = flag.String("ckpt", "", "restore weights from this sharded checkpoint dir")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()
	if *experts%*ranks != 0 {
		fmt.Fprintf(os.Stderr, "experts (%d) must divide by ranks (%d)\n", *experts, *ranks)
		os.Exit(2)
	}

	nodes := (*ranks + *rpn - 1) / *rpn
	sns := (nodes + *perSN - 1) / *perSN
	topo := simnet.New(sunway.TestMachine(sns, *perSN), *rpn)
	gcfg := moe.GateConfig{Dim: *dim, NumExperts: *experts, TopK: *topk, CapacityFactor: 2}
	mcfg := nn.GPTConfig{Vocab: *vocab, Dim: *dim, Heads: *heads, Layers: *layers, SeqLen: *seqLen, FFNHidden: *hidden}

	// One serving measurement: fresh world, same seeds, merged result
	// plus the inter-supernode wire bytes the run moved.
	measure := func(batching serve.Batching, codec mpi.Codec, rate float64) (serve.Result, float64) {
		all := serve.WorkloadConfig{
			Seed: *seed, Requests: *requests, RatePerSec: rate, Vocab: *vocab,
			PromptMin: 4, PromptMax: *seqLen / 3, NewMin: 4, NewMax: *seqLen / 3,
		}.Generate()
		var merged serve.Result
		w := mpi.NewWorld(*ranks, topo)
		w.Run(func(c *mpi.Comm) {
			model := nn.NewGPT(mcfg, tensor.NewRNG(*seed), func(_ int, name string, r *tensor.RNG) nn.Layer {
				m := moe.NewDistMoEComm(name, r, gcfg, *hidden, c, moe.Hierarchical,
					moe.CommConfig{Codec: codec, Overlap: true})
				m.SimRate = *flops
				return m
			})
			if *ckptDir != "" {
				if _, _, err := ckpt.LoadForInference(*ckptDir, model.Params()); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
			cfg := serve.Config{
				Batching: batching, MaxBatch: *maxBatch, KVBudget: *kvBudget,
				QueueCap: *queueCap, SLOQueueWait: *sloWait,
				FLOPS: *flops, MemBWGiBs: *memBW,
			}
			res := serve.Run(model, c, cfg, serve.Partition(all, c.Rank(), c.Size()))
			m := res.MergeAcross(c) // collective: every rank participates
			if c.Rank() == 0 {
				merged = m
			}
		})
		return merged, float64(w.Stats().BytesAt(simnet.MachineLevel)) / (1 << 20)
	}

	emit := func(t *metrics.Table) {
		if *csv {
			t.WriteCSV(os.Stdout)
		} else {
			t.WriteText(os.Stdout)
		}
		fmt.Println()
	}

	addRow := func(t *metrics.Table, load float64, mode, codec string, r serve.Result, mb float64) {
		t.AddRow(load, mode, codec,
			r.Throughput(),
			r.TTFT.Quantile(0.5), r.TTFT.Quantile(0.99),
			r.TPOT.Quantile(0.5), r.TPOT.Quantile(0.99),
			r.E2E.Quantile(0.5), r.E2E.Quantile(0.99),
			r.Completed, r.Rejected, mb)
	}
	cols := []string{"load-factor", "batching", "codec", "tok/s",
		"ttft-p50", "ttft-p99", "tpot-p50", "tpot-p99", "e2e-p50", "e2e-p99",
		"completed", "rejected", "interSN-MB"}

	// R13a: throughput vs offered load, per batching policy.
	r13 := metrics.NewTable("R13: serving throughput vs offered load (fp16 wire)", cols...)
	for _, load := range []float64{0.5, 1, 2, 4} {
		for _, b := range []serve.Batching{serve.Serial, serve.Static, serve.Continuous} {
			r, mb := measure(b, mpi.FP16Wire, load**baseRate)
			addRow(r13, load, b.String(), mpi.FP16Wire.String(), r, mb)
		}
	}
	emit(r13)

	// R13b: wire codec under continuous batching at saturation.
	r13b := metrics.NewTable("R13b: wire codec at load factor 2 (continuous batching)", cols...)
	for _, codec := range []mpi.Codec{mpi.FP32Wire, mpi.FP16Wire} {
		r, mb := measure(serve.Continuous, codec, 2**baseRate)
		addRow(r13b, 2, serve.Continuous.String(), codec.String(), r, mb)
	}
	emit(r13b)
}
