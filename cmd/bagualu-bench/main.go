// Command bagualu-bench regenerates the in-simulator scaling
// experiments: weak scaling (R2), strong scaling (R3), the per-step
// communication/computation breakdown (R9) of hybrid MoDa training,
// and the memory-capacity experiments — analytic max trainable
// parameters per node for each memory-wall lever (R15) and measured
// ZeRO gradient-sync traffic and optimizer-state footprint (R16) —
// using virtual network time so topology effects are visible
// regardless of host hardware.
package main

import (
	"flag"
	"fmt"
	"os"

	"bagualu/internal/data"
	"bagualu/internal/metrics"
	"bagualu/internal/moe"
	"bagualu/internal/mpi"
	"bagualu/internal/nn"
	"bagualu/internal/parallel"
	"bagualu/internal/perfmodel"
	"bagualu/internal/simnet"
	"bagualu/internal/sunway"
	"bagualu/internal/train"
)

func modelCfg(experts int, algo moe.A2AAlgo) parallel.ModelConfig {
	return parallel.ModelConfig{
		GPT: nn.GPTConfig{
			Vocab: 128, Dim: 32, Heads: 2, Layers: 2, SeqLen: 16, FFNHidden: 64,
		},
		NumExperts:     experts,
		TopK:           2,
		CapacityFactor: 1.5,
		AuxLossWeight:  0.01,
		MoEHidden:      64,
		MoEEvery:       1,
		Algo:           algo,
	}
}

// run executes `steps` training steps on `ranks` ranks and returns
// the mean per-step virtual time and MoE wall breakdown.
func run(ranks, batch, steps, experts int, algo moe.A2AAlgo) (simPerStep float64, tokensPerSimSec float64, moeT moe.Timing) {
	strat := parallel.Strategy{DataParallel: 1, ExpertParallel: ranks}
	if ranks >= 4 {
		strat = parallel.Strategy{DataParallel: 2, ExpertParallel: ranks / 2}
	}
	nodes := (ranks + 1) / 2
	sns := (nodes + 1) / 2
	if sns < 1 {
		sns = 1
	}
	machine := sunway.TestMachine(sns, 2)
	topo := simnet.New(machine, 2)
	w := mpi.NewWorld(ranks, topo)
	cc := data.CorpusConfig{Vocab: 128, SeqLen: 16, Zipf: 1, Determinism: 0.85, Seed: 9}
	tc := train.Config{Batch: batch, Precision: sunway.FP32, Schedule: train.ConstantLR(1e-3), ClipNorm: 1}

	var sim float64
	var tps float64
	var tm moe.Timing
	w.Run(func(c *mpi.Comm) {
		e, err := parallel.NewEngine(c, strat, modelCfg(experts, algo), cc, tc, train.NewAdam(0), 5)
		if err != nil {
			panic(err)
		}
		// Charge virtual compute at 30% of a half-node's FP32 peak
		// (2 ranks per node), so virtual throughput reflects the
		// modeled machine rather than the host.
		e.SetComputeRate(machine.NodeFlops(sunway.FP32) * 0.3 / 2)
		for s := 0; s < steps; s++ {
			st := e.Step()
			if c.Rank() == 0 {
				sim += st.SimTime
				tps = st.TokensPer
				tm.Gate += st.MoE.Gate
				tm.Dispatch += st.MoE.Dispatch
				tm.Expert += st.MoE.Expert
				tm.Combine += st.MoE.Combine
			}
		}
	})
	return sim / float64(steps), tps, tm
}

// runMem runs data-parallel training of a dense model (experts off so
// every gradient byte is sync traffic) and reports the per-step
// machine traffic, the per-rank optimizer-state footprint, and the
// mean virtual step time. optFor builds one optimizer per rank.
func runMem(ranks, batch, steps int, optFor func() train.Optimizer) (bytesPerStep float64, optBytes int64, simPerStep float64) {
	strat := parallel.Strategy{DataParallel: ranks, ExpertParallel: 1}
	mc := modelCfg(2, moe.Auto)
	mc.MoEEvery = 0 // dense: all traffic is gradient sync
	machine := sunway.TestMachine(1, ranks)
	topo := simnet.New(machine, 1)
	w := mpi.NewWorld(ranks, topo)
	cc := data.CorpusConfig{Vocab: 128, SeqLen: 16, Zipf: 1, Determinism: 0.85, Seed: 9}
	tc := train.Config{Batch: batch, Precision: sunway.FP32, Schedule: train.ConstantLR(1e-3), ClipNorm: 1}

	var sim float64
	w.Run(func(c *mpi.Comm) {
		e, err := parallel.NewEngine(c, strat, mc, cc, tc, optFor(), 5)
		if err != nil {
			panic(err)
		}
		e.SetComputeRate(machine.NodeFlops(sunway.FP32) * 0.3)
		for s := 0; s < steps; s++ {
			st := e.Step()
			if c.Rank() == 0 {
				sim += st.SimTime
			}
		}
		if c.Rank() == 0 {
			optBytes = e.OptStateBytes()
		}
	})
	return float64(w.Stats().TotalBytes()) / float64(steps), optBytes, sim / float64(steps)
}

func main() {
	var (
		maxRanks = flag.Int("max-ranks", 16, "largest world size")
		steps    = flag.Int("steps", 5, "steps per configuration")
		batch    = flag.Int("batch", 4, "sequences per rank (weak scaling)")
		csv      = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	emit := func(t *metrics.Table) {
		if *csv {
			t.WriteCSV(os.Stdout)
		} else {
			t.WriteText(os.Stdout)
		}
		fmt.Println()
	}

	// R2: weak scaling — per-rank batch fixed, experts scale with
	// ranks (one pool of 2·ranks experts).
	weak := metrics.NewTable("R2: weak scaling (fixed batch/rank, experts ∝ ranks)",
		"ranks", "simtime/step(s)", "tokens/simsec", "efficiency-vs-2")
	var base float64
	for p := 2; p <= *maxRanks; p *= 2 {
		sim, tps, _ := run(p, *batch, *steps, 2*p, moe.Auto)
		if p == 2 {
			base = tps / float64(p)
		}
		weak.AddRow(p, sim, fmt.Sprintf("%.4g", tps),
			fmt.Sprintf("%.2f", tps/float64(p)/base))
	}
	emit(weak)

	// R3: strong scaling — fixed global batch.
	strong := metrics.NewTable("R3: strong scaling (fixed global batch)",
		"ranks", "batch/rank", "simtime/step(s)", "speedup-vs-2")
	globalBatch := 2 * *batch * (*maxRanks / 2)
	var t2 float64
	for p := 2; p <= *maxRanks; p *= 2 {
		b := globalBatch / p
		if b < 1 {
			b = 1
		}
		sim, _, _ := run(p, b, *steps, 16, moe.Auto)
		if p == 2 {
			t2 = sim
		}
		strong.AddRow(p, b, sim, fmt.Sprintf("%.2f", t2/sim))
	}
	emit(strong)

	// R9: phase breakdown at the largest configuration, per a2a
	// algorithm.
	br := metrics.NewTable("R9: MoE phase wall-time breakdown (s, summed over steps)",
		"a2a", "gate", "dispatch", "expert", "combine")
	for _, algo := range []moe.A2AAlgo{moe.Pairwise, moe.Hierarchical} {
		_, _, tm := run(*maxRanks, *batch, *steps, 2**maxRanks, algo)
		br.AddRow(algo.String(), tm.Gate, tm.Dispatch, tm.Expert, tm.Combine)
	}
	emit(br)

	// R15: analytic max trainable parameters per 96 GiB node, per
	// memory-wall lever, on a 64-node supernode slice at mixed
	// precision (bisected over model width by perfmodel.Memory).
	dep := perfmodel.Deployment{
		Machine: sunway.TestMachine(1, 64), RanksPerNode: 1,
		DataParallel: 64, ExpertParallel: 1,
		BatchPerRank: 4, Precision: sunway.Mixed, Efficiency: 0.35,
		A2A: perfmodel.A2AHierarchical,
	}
	spec := perfmodel.ModelSpec{
		Name: "r15", Vocab: 50304, Dim: 1024, Heads: 16, Layers: 24,
		SeqLen: 1024, FFNHidden: 4096,
	}
	cap15 := metrics.NewTable("R15: max trainable params per node (mixed precision, 64 nodes, bisected width)",
		"config", "max-params", "dim", "mem GiB/node", "step(s)", "vs-baseline")
	var base15 float64
	for _, lever := range []struct {
		name string
		set  func(*perfmodel.Deployment)
	}{
		{"baseline (replicated opt)", func(*perfmodel.Deployment) {}},
		{"+zero", func(d *perfmodel.Deployment) { d.ZeRO = true }},
		{"+zero +recompute", func(d *perfmodel.Deployment) { d.ZeRO = true; d.RecomputeFraction = 1 }},
		{"+zero +recompute +offload", func(d *perfmodel.Deployment) {
			d.ZeRO = true
			d.RecomputeFraction = 1
			d.OffloadOptState = true
		}},
	} {
		dd := dep
		lever.set(&dd)
		n, best, err := dd.MaxTrainableParams(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rep, err := dd.Project(best)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if base15 == 0 {
			base15 = float64(n)
		}
		cap15.AddRow(lever.name, fmt.Sprintf("%.3gB", float64(n)/1e9), best.Dim,
			fmt.Sprintf("%.1f", rep.Mem.TotalGiB), fmt.Sprintf("%.3g", rep.StepTime),
			fmt.Sprintf("%.2fx", float64(n)/base15))
	}
	emit(cap15)

	// R16: measured gradient-sync traffic and optimizer-state bytes,
	// dense model over DP ranks: replicated Adam + ring all-reduce vs
	// ZeRO-sharded Adam + reduce-scatter/all-gather.
	r16 := metrics.NewTable("R16: measured grad-sync traffic & optimizer state (dense model)",
		"optimizer", "ranks", "sync KiB/step", "opt-state KiB/rank", "simtime/step(s)")
	p16 := *maxRanks
	if p16 > 8 {
		p16 = 8
	}
	for _, cfg := range []struct {
		name   string
		optFor func() train.Optimizer
	}{
		{"adam (replicated)", func() train.Optimizer { return train.NewAdam(0) }},
		{"zero (sharded)", func() train.Optimizer { return train.NewShardedAdam(0) }},
	} {
		bytes, ob, sim := runMem(p16, *batch, *steps, cfg.optFor)
		r16.AddRow(cfg.name, p16, fmt.Sprintf("%.1f", bytes/(1<<10)),
			fmt.Sprintf("%.1f", float64(ob)/(1<<10)), sim)
	}
	emit(r16)
}
