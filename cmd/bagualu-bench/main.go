// Command bagualu-bench regenerates the in-simulator scaling
// experiments: weak scaling (R2), strong scaling (R3), and the
// per-step communication/computation breakdown (R9) of hybrid MoDa
// training, using virtual network time so topology effects are
// visible regardless of host hardware.
package main

import (
	"flag"
	"fmt"
	"os"

	"bagualu/internal/data"
	"bagualu/internal/metrics"
	"bagualu/internal/moe"
	"bagualu/internal/mpi"
	"bagualu/internal/nn"
	"bagualu/internal/parallel"
	"bagualu/internal/simnet"
	"bagualu/internal/sunway"
	"bagualu/internal/train"
)

func modelCfg(experts int, algo moe.A2AAlgo) parallel.ModelConfig {
	return parallel.ModelConfig{
		GPT: nn.GPTConfig{
			Vocab: 128, Dim: 32, Heads: 2, Layers: 2, SeqLen: 16, FFNHidden: 64,
		},
		NumExperts:     experts,
		TopK:           2,
		CapacityFactor: 1.5,
		AuxLossWeight:  0.01,
		MoEHidden:      64,
		MoEEvery:       1,
		Algo:           algo,
	}
}

// run executes `steps` training steps on `ranks` ranks and returns
// the mean per-step virtual time and MoE wall breakdown.
func run(ranks, batch, steps, experts int, algo moe.A2AAlgo) (simPerStep float64, tokensPerSimSec float64, moeT moe.Timing) {
	strat := parallel.Strategy{DataParallel: 1, ExpertParallel: ranks}
	if ranks >= 4 {
		strat = parallel.Strategy{DataParallel: 2, ExpertParallel: ranks / 2}
	}
	nodes := (ranks + 1) / 2
	sns := (nodes + 1) / 2
	if sns < 1 {
		sns = 1
	}
	machine := sunway.TestMachine(sns, 2)
	topo := simnet.New(machine, 2)
	w := mpi.NewWorld(ranks, topo)
	cc := data.CorpusConfig{Vocab: 128, SeqLen: 16, Zipf: 1, Determinism: 0.85, Seed: 9}
	tc := train.Config{Batch: batch, Precision: sunway.FP32, Schedule: train.ConstantLR(1e-3), ClipNorm: 1}

	var sim float64
	var tps float64
	var tm moe.Timing
	w.Run(func(c *mpi.Comm) {
		e, err := parallel.NewEngine(c, strat, modelCfg(experts, algo), cc, tc, train.NewAdam(0), 5)
		if err != nil {
			panic(err)
		}
		// Charge virtual compute at 30% of a half-node's FP32 peak
		// (2 ranks per node), so virtual throughput reflects the
		// modeled machine rather than the host.
		e.SetComputeRate(machine.NodeFlops(sunway.FP32) * 0.3 / 2)
		for s := 0; s < steps; s++ {
			st := e.Step()
			if c.Rank() == 0 {
				sim += st.SimTime
				tps = st.TokensPer
				tm.Gate += st.MoE.Gate
				tm.Dispatch += st.MoE.Dispatch
				tm.Expert += st.MoE.Expert
				tm.Combine += st.MoE.Combine
			}
		}
	})
	return sim / float64(steps), tps, tm
}

func main() {
	var (
		maxRanks = flag.Int("max-ranks", 16, "largest world size")
		steps    = flag.Int("steps", 5, "steps per configuration")
		batch    = flag.Int("batch", 4, "sequences per rank (weak scaling)")
		csv      = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	emit := func(t *metrics.Table) {
		if *csv {
			t.WriteCSV(os.Stdout)
		} else {
			t.WriteText(os.Stdout)
		}
		fmt.Println()
	}

	// R2: weak scaling — per-rank batch fixed, experts scale with
	// ranks (one pool of 2·ranks experts).
	weak := metrics.NewTable("R2: weak scaling (fixed batch/rank, experts ∝ ranks)",
		"ranks", "simtime/step(s)", "tokens/simsec", "efficiency-vs-2")
	var base float64
	for p := 2; p <= *maxRanks; p *= 2 {
		sim, tps, _ := run(p, *batch, *steps, 2*p, moe.Auto)
		if p == 2 {
			base = tps / float64(p)
		}
		weak.AddRow(p, sim, fmt.Sprintf("%.4g", tps),
			fmt.Sprintf("%.2f", tps/float64(p)/base))
	}
	emit(weak)

	// R3: strong scaling — fixed global batch.
	strong := metrics.NewTable("R3: strong scaling (fixed global batch)",
		"ranks", "batch/rank", "simtime/step(s)", "speedup-vs-2")
	globalBatch := 2 * *batch * (*maxRanks / 2)
	var t2 float64
	for p := 2; p <= *maxRanks; p *= 2 {
		b := globalBatch / p
		if b < 1 {
			b = 1
		}
		sim, _, _ := run(p, b, *steps, 16, moe.Auto)
		if p == 2 {
			t2 = sim
		}
		strong.AddRow(p, b, sim, fmt.Sprintf("%.2f", t2/sim))
	}
	emit(strong)

	// R9: phase breakdown at the largest configuration, per a2a
	// algorithm.
	br := metrics.NewTable("R9: MoE phase wall-time breakdown (s, summed over steps)",
		"a2a", "gate", "dispatch", "expert", "combine")
	for _, algo := range []moe.A2AAlgo{moe.Pairwise, moe.Hierarchical} {
		_, _, tm := run(*maxRanks, *batch, *steps, 2**maxRanks, algo)
		br.AddRow(algo.String(), tm.Gate, tm.Dispatch, tm.Expert, tm.Combine)
	}
	emit(br)
}
