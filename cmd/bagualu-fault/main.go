// Command bagualu-fault regenerates experiments R11 and R12. R11:
// training goodput (useful virtual time / total virtual time) under
// injected rank failures, swept over the checkpoint interval and the
// machine MTBF, plus the per-step cost of synchronous versus
// asynchronous sharded checkpointing on a failure-free run. R12:
// throughput under a lossy, straggling interconnect compared across
// escalation policies — always-rollback (every wire fault is a rank
// failure), retransmit-only (reliable transport, no mitigation), and
// tiered (transport + straggler-draining expert migration).
package main

import (
	"flag"
	"fmt"
	"os"

	"bagualu/internal/data"
	"bagualu/internal/fault"
	"bagualu/internal/metrics"
	"bagualu/internal/mpi"
	"bagualu/internal/nn"
	"bagualu/internal/parallel"
	"bagualu/internal/simnet"
	"bagualu/internal/sunway"
	"bagualu/internal/train"
)

func main() {
	var (
		ranks = flag.Int("ranks", 8, "world size")
		perSN = flag.Int("nodes-per-sn", 4, "nodes per supernode")
		rpn   = flag.Int("ranks-per-node", 2, "ranks per node")
		steps = flag.Int("steps", 48, "training steps per run")
		seed  = flag.Uint64("seed", 42, "fault schedule seed")
		flops = flag.Float64("sim-flops", 2e8, "virtual FLOP/s per rank")
		bw    = flag.Float64("disk-gibs", 0.25, "checkpoint disk bandwidth per rank, GiB/s")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")

		dropProb = flag.Float64("drop-prob", 1e-3, "R12: per-message wire drop probability")
		stragN   = flag.Int("stragglers", 2, "R12: number of straggler ranks")
		stragX   = flag.Float64("straggler-mult", 4, "R12: straggler delay multiplier")
	)
	flag.Parse()

	nodes := (*ranks + *rpn - 1) / *rpn
	sns := (nodes + *perSN - 1) / *perSN
	topo := simnet.New(sunway.TestMachine(sns, *perSN), *rpn)

	// EP=1 keeps every shrink recoverable (any survivor count divides
	// the expert pool), so the sweep measures checkpoint policy, not
	// placement luck.
	strat := parallel.Strategy{DataParallel: *ranks, ExpertParallel: 1}
	baseCfg := func(pol *train.FaultPolicy) parallel.FTConfig {
		return parallel.FTConfig{
			Strategy: strat,
			Model: parallel.ModelConfig{
				GPT:            nn.GPTConfig{Vocab: 64, Dim: 16, Heads: 2, Layers: 2, SeqLen: 8, FFNHidden: 32},
				NumExperts:     4,
				TopK:           2,
				CapacityFactor: 2,
				AuxLossWeight:  0.01,
				MoEHidden:      32,
				MoEEvery:       1,
			},
			Corpus:       data.CorpusConfig{Vocab: 64, SeqLen: 8, Zipf: 0.5, Determinism: 0.9, Seed: 7},
			Train:        train.Config{Batch: 4, Precision: sunway.FP32, Schedule: train.ConstantLR(1e-2), ClipNorm: 1},
			Seed:         11,
			Steps:        *steps,
			Policy:       pol,
			OptFor:       func() train.Optimizer { return train.NewAdam(0) },
			ComputeFLOPS: *flops,
		}
	}
	run := func(cfg parallel.FTConfig, inj *fault.Injector) *parallel.FTResult {
		dir, err := os.MkdirTemp("", "bagualu-fault-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		if cfg.Policy != nil {
			cfg.Policy.Dir = dir
		}
		w := mpi.NewWorld(*ranks, topo)
		res, err := parallel.RunFaultTolerant(w, cfg, inj)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return res
	}
	emit := func(t *metrics.Table) {
		if *csv {
			t.WriteCSV(os.Stdout)
		} else {
			t.WriteText(os.Stdout)
		}
		fmt.Println()
	}

	// R11a: goodput vs checkpoint interval x MTBF (async checkpoints).
	goodput := metrics.NewTable("R11a: goodput vs checkpoint interval x MTBF (async ckpt)",
		"mtbf-steps", "ckpt-interval", "crashes", "recoveries", "completed", "goodput", "useful-sim-s", "total-sim-s")
	phases := metrics.NewPhaseMeter(metrics.PhaseCkptSnapshot, metrics.PhaseCkptFlush, metrics.PhaseRecovery,
		metrics.PhaseRetransmit, metrics.PhaseMitigation)
	for _, mtbf := range []float64{16, 48} {
		for _, interval := range []int{2, 5, 10} {
			inj, err := fault.New(fault.Config{
				Seed: *seed, Ranks: *ranks, Steps: *steps, MTBFSteps: mtbf, MaxCrashes: *ranks - 2,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			pol := &train.FaultPolicy{Interval: interval, Async: true, DiskBWGiBs: *bw, MaxRecoveries: *ranks}
			res := run(baseCfg(pol), inj)
			goodput.AddRow(mtbf, interval, res.Failures, res.Recoveries, res.Completed,
				fmt.Sprintf("%.3f", res.Goodput), fmt.Sprintf("%.4f", res.UsefulSim), fmt.Sprintf("%.4f", res.TotalSim))
			phases.Observe(metrics.PhaseCkptSnapshot, res.Timing.Snapshot)
			phases.Observe(metrics.PhaseCkptFlush, res.Timing.Flush)
			phases.Observe(metrics.PhaseRecovery, res.Timing.Recovery)
		}
	}
	emit(goodput)

	// R11b: per-step checkpoint overhead, sync vs async, failure-free.
	over := metrics.NewTable("R11b: checkpoint overhead per step (virtual s, failure-free)",
		"ckpt-interval", "baseline-step", "sync-step", "async-step", "sync-overhead", "async-overhead")
	base := run(baseCfg(nil), nil)
	basePer := base.TotalSim / float64(*steps)
	for _, interval := range []int{2, 5, 10} {
		sync := run(baseCfg(&train.FaultPolicy{Interval: interval, DiskBWGiBs: *bw, MaxRecoveries: 1}), nil)
		async := run(baseCfg(&train.FaultPolicy{Interval: interval, Async: true, DiskBWGiBs: *bw, MaxRecoveries: 1}), nil)
		sp := sync.TotalSim / float64(*steps)
		ap := async.TotalSim / float64(*steps)
		over.AddRow(interval,
			fmt.Sprintf("%.6f", basePer), fmt.Sprintf("%.6f", sp), fmt.Sprintf("%.6f", ap),
			fmt.Sprintf("%.6f", sp-basePer), fmt.Sprintf("%.6f", ap-basePer))
	}
	emit(over)

	// R12: escalation policy comparison on a lossy, straggling wire.
	// EP > 1 gives mitigation experts to drain; MoESimFLOPS charges
	// expert compute per row a rank actually processes, which is the
	// work a drained straggler stops doing (and ComputeFLOPS is off so
	// expert compute is not double-priced). ClipNorm 0 keeps the loss
	// trajectory bit-comparable across expert placements. Stragglers
	// are pinned to the highest ranks so the schedule is independent of
	// the drop-probability sweep.
	if *ranks%4 == 0 && *ranks >= 8 {
		cfg12 := func(pol *train.FaultPolicy) parallel.FTConfig {
			cfg := baseCfg(pol)
			cfg.Strategy = parallel.Strategy{DataParallel: *ranks / 4, ExpertParallel: 4}
			cfg.Model.NumExperts = 8
			cfg.Model.MoESimFLOPS = *flops
			cfg.Train.ClipNorm = 0
			cfg.ComputeFLOPS = 0
			return cfg
		}
		ev := make([]fault.Event, 0, *stragN)
		for i := 0; i < *stragN && i < *ranks-1; i++ {
			ev = append(ev, fault.Event{Kind: fault.EventStraggler, Rank: *ranks - 1 - i, Mult: *stragX})
		}
		mkInj := func(dp float64) *fault.Injector {
			inj, err := fault.Scripted(fault.Config{Seed: *seed, Ranks: *ranks, Steps: *steps, DropProb: dp}, ev)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			return inj
		}
		polFor := func(esc train.Escalation) *train.FaultPolicy {
			return &train.FaultPolicy{Interval: 8, Async: true, DiskBWGiBs: *bw, MaxRecoveries: *ranks, Escalation: esc}
		}
		ff := run(cfg12(polFor(train.EscalateTiered)), nil)
		r12 := metrics.NewTable(
			fmt.Sprintf("R12: throughput vs drop-prob x escalation policy (%d stragglers at x%g)", len(ev), *stragX),
			"drop-prob", "policy", "completed", "rollbacks", "retransmits", "recovered", "mitigations",
			"steps", "total-sim-s", "steps-per-sim", "rel-throughput", "final-loss", "bitexact")
		for _, dp := range []float64{0, *dropProb, *dropProb * 10} {
			for _, esc := range []train.Escalation{train.EscalateRollback, train.EscalateRetransmit, train.EscalateTiered} {
				res := run(cfg12(polFor(esc)), mkInj(dp))
				rel := 0.0
				if ff.StepsPerSim > 0 {
					rel = res.StepsPerSim / ff.StepsPerSim
				}
				r12.AddRow(fmt.Sprintf("%g", dp), esc.String(), res.Completed, res.Recoveries,
					res.Retransmits, res.RecoveredFrames, res.Mitigations, res.Steps,
					fmt.Sprintf("%.4f", res.TotalSim), fmt.Sprintf("%.3f", res.StepsPerSim),
					fmt.Sprintf("%.3f", rel), fmt.Sprintf("%.5f", res.FinalLoss), res.FinalLoss == ff.FinalLoss)
				phases.Observe(metrics.PhaseRetransmit, res.BackoffSim)
				phases.Observe(metrics.PhaseMitigation, res.MitigationSim)
			}
		}
		emit(r12)
	}

	// Cumulative fault-tolerance phase time across the R11/R12 sweeps.
	ph := metrics.NewTable("R11/R12 phase breakdown across the sweeps (virtual s)",
		"phase", "seconds")
	for _, name := range phases.Names() {
		ph.AddRow(name, fmt.Sprintf("%.4f", phases.Seconds(name)))
	}
	emit(ph)
}
