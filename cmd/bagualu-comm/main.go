// Command bagualu-comm regenerates the collective micro-benchmarks
// (experiments R4 and R8): all-to-all and all-reduce virtual time and
// inter-supernode traffic versus message size, rank count, and
// algorithm.
package main

import (
	"flag"
	"fmt"
	"os"

	"bagualu/internal/metrics"
	"bagualu/internal/moe"
	"bagualu/internal/mpi"
	"bagualu/internal/simnet"
	"bagualu/internal/sunway"
)

func main() {
	var (
		ranks = flag.Int("ranks", 32, "world size")
		perSN = flag.Int("nodes-per-sn", 4, "nodes per supernode")
		rpn   = flag.Int("ranks-per-node", 2, "ranks per node")
		minKB = flag.Int("min-kb", 1, "smallest per-rank payload in KiB")
		maxKB = flag.Int("max-kb", 4096, "largest per-rank payload in KiB")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")

		codecName = flag.String("codec", "fp16", "wire codec for the flattened exchange (fp32|fp16)")
		overlap   = flag.Bool("overlap", true, "use the two-phase overlapped exchange in R4c")
		simFLOPS  = flag.Float64("sim-flops", 1e9, "virtual FLOP/s of compute hidden inside the R4c overlap window")
	)
	flag.Parse()
	codec, err := mpi.ParseCodec(*codecName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	nodes := (*ranks + *rpn - 1) / *rpn
	sns := (nodes + *perSN - 1) / *perSN
	machine := sunway.TestMachine(sns, *perSN)
	topo := simnet.New(machine, *rpn)

	emit := func(t *metrics.Table) {
		if *csv {
			t.WriteCSV(os.Stdout)
		} else {
			t.WriteText(os.Stdout)
		}
		fmt.Println()
	}

	// R4: all-to-all algorithm comparison across message sizes.
	a2a := metrics.NewTable("R4: all-to-all virtual time (s) by algorithm",
		"bytes/rank", "direct", "pairwise", "hierarchical", "interSN-msgs-flat", "interSN-msgs-hier")
	for kb := *minKB; kb <= *maxKB; kb *= 4 {
		bytes := kb * 1024
		elems := bytes / 4 / *ranks
		if elems < 1 {
			elems = 1
		}
		run := func(f func(c *mpi.Comm, ch [][]float32) [][]float32) (float64, int64) {
			w := mpi.NewWorld(*ranks, topo)
			w.Run(func(c *mpi.Comm) {
				chunks := make([][]float32, *ranks)
				for d := range chunks {
					chunks[d] = make([]float32, elems)
				}
				f(c, chunks)
			})
			return w.MaxTime(), w.Stats().MsgsAt(simnet.MachineLevel)
		}
		td, _ := run(func(c *mpi.Comm, ch [][]float32) [][]float32 { return c.AllToAllDirect(ch) })
		tp, mf := run(func(c *mpi.Comm, ch [][]float32) [][]float32 { return c.AllToAllPairwise(ch) })
		th, mh := run(func(c *mpi.Comm, ch [][]float32) [][]float32 { return c.AllToAllHier(ch) })
		a2a.AddRow(kb*1024, td, tp, th, mf, mh)
	}
	emit(a2a)

	// R4c: the flattened MoE dispatch exchange — wire codec and
	// two-phase comm/compute overlap. Each rank sends equal chunks to
	// every peer through the hierarchical wire path and, in overlap
	// mode, runs a synthetic expert-compute window between the local
	// and remote receive legs so cross-supernode flight time hides.
	cfg := moe.CommConfig{Codec: codec, Overlap: *overlap}
	wt := metrics.NewTable(fmt.Sprintf("R4c: flattened exchange (%s)", cfg),
		"bytes/rank", "time-fp32-blocking", "time", "interSN-bytes-fp32", "interSN-bytes", "saved%")
	for kb := *minKB; kb <= *maxKB; kb *= 4 {
		elems := kb * 1024 / 4 / *ranks
		if elems < 1 {
			elems = 1
		}
		// The compute window an MoE layer would fill with local-expert
		// GEMMs, charged in both modes (after the exchange when
		// blocking, between the receive legs when overlapped) so the
		// time columns differ only by hidden flight time.
		window := 100 * float64(elems) / *simFLOPS
		run := func(c mpi.Codec, over bool) (float64, int64) {
			w := mpi.NewWorld(*ranks, topo)
			w.Run(func(cm *mpi.Comm) {
				counts := make([]int, *ranks)
				for d := range counts {
					counts[d] = elems
				}
				sb := mpi.NewSendBuf(counts)
				row := make([]float32, elems)
				for d := 0; d < *ranks; d++ {
					sb.Append(d, row)
				}
				var local, remote *mpi.RecvBuf
				if over {
					ex := cm.BeginExchange(true, c)
					ex.PostAll(sb)
					ex.Flush()
					local = ex.RecvLocal()
					cm.Compute(window)
					remote = ex.RecvRemote()
				} else {
					local = cm.AllToAllvHier(sb, c)
					cm.Compute(window)
				}
				local.Release()
				if remote != nil {
					remote.Release()
				}
				sb.Release()
			})
			return w.MaxTime(), w.Stats().BytesAt(simnet.MachineLevel)
		}
		base, baseBytes := run(mpi.FP32Wire, false)
		tc, cBytes := run(codec, *overlap)
		saved := 0.0
		if baseBytes > 0 {
			saved = 100 * (1 - float64(cBytes)/float64(baseBytes))
		}
		wt.AddRow(kb*1024, base, tc, baseBytes, cBytes, saved)
	}
	emit(wt)

	// R8: all-reduce algorithms across sizes.
	ar := metrics.NewTable("R8: all-reduce virtual time (s) by algorithm",
		"bytes", "ring", "hierarchical", "interSN-bytes-ring", "interSN-bytes-hier")
	for kb := *minKB; kb <= *maxKB; kb *= 4 {
		elems := kb * 1024 / 4
		run := func(f func(c *mpi.Comm, d []float32) []float32) (float64, int64) {
			w := mpi.NewWorld(*ranks, topo)
			w.Run(func(c *mpi.Comm) {
				f(c, make([]float32, elems))
			})
			return w.MaxTime(), w.Stats().BytesAt(simnet.MachineLevel)
		}
		tr, br := run(func(c *mpi.Comm, d []float32) []float32 { return c.AllReduceRing(d, mpi.OpSum) })
		th, bh := run(func(c *mpi.Comm, d []float32) []float32 { return c.AllReduceHier(d, mpi.OpSum) })
		ar.AddRow(kb*1024, tr, th, br, bh)
	}
	emit(ar)

	// R4b: all-to-all scaling with rank count at fixed payload.
	sc := metrics.NewTable("R4b: all-to-all time vs ranks (64 KiB/rank)",
		"ranks", "pairwise", "hierarchical", "speedup")
	for p := 8; p <= *ranks; p *= 2 {
		n := (p + *rpn - 1) / *rpn
		s := (n + *perSN - 1) / *perSN
		tp2 := simnet.New(sunway.TestMachine(s, *perSN), *rpn)
		elems := 64 * 1024 / 4 / p
		if elems < 1 {
			elems = 1
		}
		run := func(f func(c *mpi.Comm, ch [][]float32) [][]float32) float64 {
			w := mpi.NewWorld(p, tp2)
			w.Run(func(c *mpi.Comm) {
				chunks := make([][]float32, p)
				for d := range chunks {
					chunks[d] = make([]float32, elems)
				}
				f(c, chunks)
			})
			return w.MaxTime()
		}
		tpw := run(func(c *mpi.Comm, ch [][]float32) [][]float32 { return c.AllToAllPairwise(ch) })
		thi := run(func(c *mpi.Comm, ch [][]float32) [][]float32 { return c.AllToAllHier(ch) })
		sc.AddRow(p, tpw, thi, tpw/thi)
	}
	emit(sc)
}
