// Command bagualu-perf regenerates the full-machine analytic
// experiments: the model-configuration table (R1) and the projection
// of sustained training performance on the 96,000-node / 37-million-
// core New Generation Sunway (R7), including the paper's headline
// mixed-precision EFLOPS figure.
package main

import (
	"flag"
	"fmt"
	"os"

	"bagualu/internal/metrics"
	"bagualu/internal/perfmodel"
	"bagualu/internal/sunway"
)

func main() {
	var (
		eff   = flag.Float64("efficiency", 0.35, "sustained fraction of node peak for GEMM kernels")
		batch = flag.Int("batch", 4, "sequences per rank per step")
		csv   = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	machine := sunway.NewGenerationSunway()
	fmt.Println(machine)
	fmt.Println()

	emit := func(t *metrics.Table) {
		if *csv {
			t.WriteCSV(os.Stdout)
		} else {
			t.WriteText(os.Stdout)
		}
		fmt.Println()
	}

	// R1: model configuration table.
	cfgs := metrics.NewTable("R1: brain-scale model configurations (reconstructed)",
		"model", "dim", "layers", "moe-layers", "experts/layer", "params", "active/token")
	for _, s := range perfmodel.BrainScaleSpecs() {
		cfgs.AddRow(s.Name, s.Dim, s.Layers, s.MoELayers(), s.NumExperts,
			fmt.Sprintf("%.3gT", float64(s.TotalParams())/1e12),
			fmt.Sprintf("%.3gB", float64(s.ActiveParamsPerToken())/1e9))
	}
	emit(cfgs)

	// R7: full-machine projection per precision and model.
	proj := metrics.NewTable("R7: full-machine projection (96,000 nodes, hierarchical a2a, ZeRO)",
		"model", "precision", "step-time(s)", "compute(s)", "a2a(s)", "sync(s)",
		"tokens/s", "sustained", "peak-frac", "mem/node(GiB)", "fits")
	for _, spec := range perfmodel.BrainScaleSpecs() {
		for _, prec := range []sunway.Precision{sunway.FP32, sunway.Mixed} {
			// EP must divide both the rank count and the expert
			// count; the remaining ranks form data-parallel replicas.
			ep := gcd(machine.Nodes(), spec.NumExperts)
			d := perfmodel.Deployment{
				Machine:        machine,
				RanksPerNode:   1,
				DataParallel:   machine.Nodes() / ep,
				ExpertParallel: ep,
				BatchPerRank:   *batch,
				Precision:      prec,
				Efficiency:     *eff,
				A2A:            perfmodel.A2AHierarchical,
				ZeRO:           true,
				OverlapSync:    true,
			}
			rep, err := d.Project(spec)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s/%s: %v\n", spec.Name, prec, err)
				continue
			}
			proj.AddRow(spec.Name, prec.String(),
				rep.StepTime, rep.ComputeTime, rep.A2ATime, rep.SyncTime,
				fmt.Sprintf("%.3g", rep.TokensPerSec),
				fmt.Sprintf("%.3g FLOPS (%.2f EFLOPS)", rep.SustainedFlops, rep.SustainedFlops/1e18),
				fmt.Sprintf("%.1f%%", 100*rep.PeakFraction),
				fmt.Sprintf("%.1f", rep.MemPerNodeGiB), rep.Fits)
		}
	}
	emit(proj)

	// Ablation: flat vs hierarchical all-to-all at full machine scale.
	abl := metrics.NewTable("R7b: a2a strategy ablation (174T, mixed precision)",
		"a2a", "step-time(s)", "a2a-time(s)", "sustained-EFLOPS")
	spec := perfmodel.BrainScaleSpecs()[2]
	for _, a := range []perfmodel.A2AStrategy{perfmodel.A2AFlat, perfmodel.A2AHierarchical} {
		d := perfmodel.Deployment{
			Machine: machine, RanksPerNode: 1, DataParallel: 1,
			ExpertParallel: machine.Nodes(), BatchPerRank: *batch,
			Precision: sunway.Mixed, Efficiency: *eff, A2A: a, ZeRO: true,
			OverlapSync: true,
		}
		rep, err := d.Project(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		abl.AddRow(a.String(), rep.StepTime, rep.A2ATime, rep.SustainedFlops/1e18)
	}
	emit(abl)

	// R2-proj: weak scaling of the 1.93T model from 1,500 to 96,000
	// nodes (experts scale with the machine so per-node work is
	// constant — the paper's weak-scaling protocol).
	weak := metrics.NewTable("R2-proj: projected weak scaling, 1.93T-class model, mixed precision",
		"nodes", "cores", "experts", "step-time(s)", "tokens/s", "sustained-EFLOPS", "efficiency")
	base := 0.0
	spec2 := perfmodel.BrainScaleSpecs()[0]
	for _, nodes := range []int{1536, 6144, 24576, 96000} {
		m := sunway.NewGenerationSunway()
		m.Supernodes = nodes / m.NodesPerSupernode
		spec2.NumExperts = nodes // one expert per node: experts ∝ machine
		d := perfmodel.Deployment{
			Machine: m, RanksPerNode: 1, DataParallel: 1, ExpertParallel: nodes,
			BatchPerRank: *batch, Precision: sunway.Mixed, Efficiency: *eff,
			A2A: perfmodel.A2AHierarchical, ZeRO: true, OverlapSync: true,
		}
		rep, err := d.Project(spec2)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			continue
		}
		perNode := rep.TokensPerSec / float64(nodes)
		if base == 0 {
			base = perNode
		}
		weak.AddRow(nodes, m.Cores(), spec2.NumExperts, rep.StepTime,
			fmt.Sprintf("%.3g", rep.TokensPerSec),
			fmt.Sprintf("%.2f", rep.SustainedFlops/1e18),
			fmt.Sprintf("%.2f", perNode/base))
	}
	emit(weak)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
