// Command bagualu-plan runs the simulation-driven deployment
// autotuner (internal/autotune) and emits the R17 experiment tables:
// the analytic candidate ranking over the feasible deployment space,
// the analytic-vs-measured validation of its top candidates on the
// virtual clock, and the winning configuration projected to the
// full-scale machine budget (nodes, memory per node, MTBF, target
// parameter count) with its expected EFLOPS and goodput.
//
// Output is a pure function of the flags: two runs with the same seed
// emit byte-identical plans (the verify.sh gate double-runs this).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"bagualu/internal/autotune"
	"bagualu/internal/moe"
	"bagualu/internal/perfmodel"
	"bagualu/internal/sunway"
)

func main() {
	var (
		// Target budget.
		nodes   = flag.Int("nodes", 96000, "target machine size in nodes")
		nodeMem = flag.Float64("node-mem", 0, "memory per node in GiB (0 = machine default)")
		mtbf    = flag.Float64("mtbf", 400, "expected steps between failures (search and target)")
		params  = flag.Float64("params", 174e12, "target parameter count; nearest brain-scale spec is used")

		// Search scale.
		ranks   = flag.Int("ranks", 8, "simulated ranks for the search")
		rpn     = flag.Int("ranks-per-node", 2, "ranks per simulated node")
		perSN   = flag.Int("nodes-per-sn", 2, "nodes per simulated supernode")
		eff     = flag.Float64("efficiency", 0.3, "sustained fraction of node peak for GEMM kernels")
		routes  = flag.String("routes", "token-choice", "comma-separated route modes to search")
		ppMax   = flag.Int("pp-max", 1, "cap on the pipeline-parallel axis (1 = flat MoDa search)")
		layers  = flag.Int("layers", 0, "search-model depth (0 = default; deeper stacks give pipelines room)")
		topk    = flag.Int("topk", 5, "candidates to validate with simulated runs")
		steps   = flag.Int("steps", 4, "measured steps per validation run")
		maxCand = flag.Int("max-candidates", 2048, "cap on scored candidates (larger spaces are sampled)")
		seed    = flag.Uint64("seed", 1, "seed for candidate sampling and validation runs")
		csv     = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	target := sunway.NewGenerationSunway()
	nps := target.NodesPerSupernode
	if *nodes < nps {
		nps = *nodes
	}
	if *nodes <= 0 || *nodes%nps != 0 {
		fmt.Fprintf(os.Stderr, "bagualu-plan: -nodes %d must be a positive multiple of %d\n", *nodes, nps)
		os.Exit(1)
	}
	target.NodesPerSupernode = nps
	target.Supernodes = *nodes / nps
	if *nodeMem > 0 {
		target.NodeMemGiB = *nodeMem
	}

	// Pick the brain-scale spec whose total parameter count is nearest
	// the requested budget.
	specs := perfmodel.BrainScaleSpecs()
	spec := specs[0]
	for _, s := range specs[1:] {
		if math.Abs(float64(s.TotalParams())-*params) < math.Abs(float64(spec.TotalParams())-*params) {
			spec = s
		}
	}

	var modes []moe.RouteMode
	for _, name := range strings.Split(*routes, ",") {
		m, err := moe.ParseRouteMode(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintf(os.Stderr, "bagualu-plan: %v\n", err)
			os.Exit(1)
		}
		modes = append(modes, m)
	}

	cfg := autotune.Config{
		Ranks: *ranks, RanksPerNode: *rpn, NodesPerSN: *perSN,
		Target: target, TargetSpec: spec,
		Efficiency: *eff,
		Routes:     modes,
		PPMax:      *ppMax,
		MTBFSteps:  *mtbf, TargetMTBFSteps: *mtbf,
		TopK: *topk, ValidateSteps: *steps,
		MaxCandidates: *maxCand,
		Seed:          *seed,
	}
	if *layers > 0 {
		cfg.Spec = autotune.SearchSpec()
		cfg.Spec.Layers = *layers
	}
	plan, err := autotune.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bagualu-plan: %v\n", err)
		os.Exit(1)
	}
	if err := plan.Render(os.Stdout, *csv); err != nil {
		fmt.Fprintf(os.Stderr, "bagualu-plan: %v\n", err)
		os.Exit(1)
	}
}
