package bagualu_test

import (
	"fmt"
	"math"
	"path/filepath"
	"testing"

	"bagualu"
)

// TestFacadeEndToEnd drives the whole public API the way a downstream
// user would: build a machine, a world, a hybrid engine; train; check
// losses fall; checkpoint and restore.
func TestFacadeEndToEnd(t *testing.T) {
	machine := bagualu.TestMachine(2, 2)
	if machine.Cores() <= 0 {
		t.Fatal("machine has no cores")
	}
	topo := bagualu.NewTopology(machine, 1)
	strat := bagualu.Strategy{DataParallel: 2, ExpertParallel: 2}
	world := bagualu.NewWorld(strat.Size(), topo)

	mc := bagualu.ModelConfig{
		GPT:        bagualu.GPTConfig{Vocab: 32, Dim: 16, Heads: 2, Layers: 1, SeqLen: 8, FFNHidden: 32},
		NumExperts: 4, TopK: 2, CapacityFactor: 2, AuxLossWeight: 0.01,
		MoEHidden: 32, MoEEvery: 1, Algo: bagualu.A2AAuto,
	}
	cc := bagualu.CorpusConfig{Vocab: 32, SeqLen: 8, Zipf: 1, Determinism: 0.9, Seed: 2}
	tc := bagualu.TrainConfig{
		Batch: 2, Precision: bagualu.Mixed,
		Schedule: bagualu.WarmupCosine(3e-3, 3e-4, 2, 15), ClipNorm: 1,
	}

	var first, last float32
	world.Run(func(c *bagualu.Comm) {
		e, err := bagualu.NewEngine(c, strat, mc, cc, tc, bagualu.NewAdam(0.01), 1)
		if err != nil {
			t.Error(err)
			panic(err)
		}
		for s := 0; s < 15; s++ {
			st := e.Step()
			if c.Rank() == 0 {
				if s == 0 {
					first = st.Loss
				}
				last = st.Loss
			}
		}
	})
	if last >= first {
		t.Fatalf("facade training did not reduce loss: %v -> %v", first, last)
	}
	if world.Stats().TotalBytes() == 0 {
		t.Fatal("no traffic recorded")
	}
}

func TestFacadeSingleRankWithCheckpoint(t *testing.T) {
	r := bagualu.NewRNG(3)
	model := bagualu.NewGPT(bagualu.GPTConfig{
		Vocab: 16, Dim: 8, Heads: 2, Layers: 1, SeqLen: 4, FFNHidden: 16,
	}, r, func(block int, name string, rr *bagualu.RNG) bagualu.Layer {
		return bagualu.NewLocalMoE(name, rr, bagualu.GateConfig{
			Dim: 8, NumExperts: 2, TopK: 1, CapacityFactor: 2,
		}, 16)
	})
	corpus, err := bagualu.NewCorpus(bagualu.CorpusConfig{Vocab: 16, SeqLen: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := bagualu.NewTrainer(model, corpus, bagualu.NewSGD(0.9), bagualu.TrainConfig{
		Batch: 2, Precision: bagualu.FP32, Schedule: bagualu.ConstantLR(1e-2),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tr.Step()
	}
	path := filepath.Join(t.TempDir(), "m.ckpt")
	if err := bagualu.SaveCheckpoint(path, 3, tr.Params()); err != nil {
		t.Fatal(err)
	}
	step, err := bagualu.LoadCheckpoint(path, tr.Params())
	if err != nil {
		t.Fatal(err)
	}
	if step != 3 {
		t.Fatalf("step = %d", step)
	}
}

func TestFacadeProjection(t *testing.T) {
	specs := bagualu.BrainScaleSpecs()
	if len(specs) != 3 {
		t.Fatalf("%d specs", len(specs))
	}
	m := bagualu.NewGenerationSunway()
	d := bagualu.Deployment{
		Machine: m, RanksPerNode: 1, DataParallel: 1, ExpertParallel: m.Nodes(),
		BatchPerRank: 4, Precision: bagualu.Mixed, Efficiency: 0.35,
		A2A: bagualu.ProjA2AHierarchical, ZeRO: true, OverlapSync: true,
	}
	rep, err := d.Project(specs[2])
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fits {
		t.Fatal("headline config must fit")
	}
	// Reproduction target: the paper's ~1.18 EFLOPS headline within
	// a factor of 2.
	ef := rep.SustainedFlops / 1e18
	if ef < 0.59 || ef > 2.36 {
		t.Fatalf("sustained %v EFLOPS outside 2x band of 1.18", ef)
	}
}

func TestFacadeCollectives(t *testing.T) {
	w := bagualu.NewWorld(4, nil)
	w.Run(func(c *bagualu.Comm) {
		sum := c.AllReduce([]float32{1}, bagualu.OpSum)
		if sum[0] != 4 {
			t.Errorf("AllReduce = %v", sum[0])
		}
		mx := c.AllReduce([]float32{float32(c.Rank())}, bagualu.OpMax)
		if mx[0] != 3 {
			t.Errorf("OpMax = %v", mx[0])
		}
	})
}

func ExampleNewWorld() {
	w := bagualu.NewWorld(3, nil)
	w.Run(func(c *bagualu.Comm) {
		total := c.AllReduce([]float32{1}, bagualu.OpSum)
		if c.Rank() == 0 {
			fmt.Println(int(total[0]), "ranks")
		}
	})
	// Output: 3 ranks
}

func ExampleBrainScaleSpecs() {
	for _, s := range bagualu.BrainScaleSpecs() {
		fmt.Printf("%s: %.3gT\n", s.Name, float64(s.TotalParams())/1e12)
	}
	// Output:
	// BaGuaLu-1.93T: 1.93T
	// BaGuaLu-14.5T: 14.5T
	// BaGuaLu-174T: 174T
}

func TestPrecisionConstantsDistinct(t *testing.T) {
	seen := map[bagualu.Precision]bool{}
	for _, p := range []bagualu.Precision{bagualu.FP64, bagualu.FP32, bagualu.FP16, bagualu.Mixed} {
		if seen[p] {
			t.Fatal("duplicate precision constant")
		}
		seen[p] = true
	}
}

func TestMachineHeadline(t *testing.T) {
	m := bagualu.NewGenerationSunway()
	if m.Cores() < 37_000_000 {
		t.Fatalf("cores = %d; the title promises over 37 million", m.Cores())
	}
	if math.Abs(m.PeakFlopsFP16()/1e18-5.3) > 1 {
		t.Fatalf("fp16 peak %.3g implausible", m.PeakFlopsFP16())
	}
}
